"""Cross-shard (table-parallel) reduction over a modeled interconnect.

One FAFNIR node reduces its local slice of every query through the
on-package tree; this package is the second-level tree that combines
those partial vectors *across* nodes: index-space partitioning
(:mod:`repro.comm.partition`), pluggable collective schedules over a
latency/bandwidth link model (:mod:`repro.comm.schedule`), and the
split/combine pipeline that keeps the whole thing byte-identical to a
single-node run (:mod:`repro.comm.reducer`).  Threaded through
:class:`repro.core.sharding.ShardedRunner` via ``reduction=``.
"""

from repro.comm.partition import (
    IndexPartition,
    MODE_CONTIGUOUS,
    MODE_EXPLICIT,
    MODE_HOME_RANK,
)
from repro.comm.reducer import (
    CrossShardReducer,
    ReducedBatchResult,
    ReducedRunResult,
    ShardSplit,
    partial_operator,
)
from repro.comm.schedule import (
    CommMessage,
    GatherToRoot,
    RecursiveDoubling,
    ReduceScatterAllgather,
    ReductionSchedule,
    SCHEDULES,
    SCHEDULE_GATHER,
    SCHEDULE_RECURSIVE_DOUBLING,
    SCHEDULE_REDUCE_SCATTER,
    SEGMENT_HEADER_BYTES,
    ScheduleOutcome,
    canonical_fold,
    get_schedule,
    segment_count,
)
from repro.hw.link import LinkModel

__all__ = [
    "CommMessage",
    "CrossShardReducer",
    "GatherToRoot",
    "IndexPartition",
    "LinkModel",
    "MODE_CONTIGUOUS",
    "MODE_EXPLICIT",
    "MODE_HOME_RANK",
    "RecursiveDoubling",
    "ReduceScatterAllgather",
    "ReducedBatchResult",
    "ReducedRunResult",
    "ReductionSchedule",
    "SCHEDULES",
    "SCHEDULE_GATHER",
    "SCHEDULE_RECURSIVE_DOUBLING",
    "SCHEDULE_REDUCE_SCATTER",
    "SEGMENT_HEADER_BYTES",
    "ScheduleOutcome",
    "ShardSplit",
    "canonical_fold",
    "get_schedule",
    "partial_operator",
    "segment_count",
]
