"""Second-level reduction schedules over shard partials.

Each shard's engine reduces its slice of every query down to one partial
vector; combining partials across shards is a classic sparse allreduce,
and this module models the three canonical schedules over the
:class:`~repro.hw.link.LinkModel` fabric:

* **gather-to-root** — every shard ships its partials to shard 0, whose
  ingress link drains the messages serially: O(S) link time, one step.
  The baseline every tree schedule is measured against.
* **recursive-doubling** — ``log2 S`` butterfly rounds; in round *k*
  node *i* exchanges its full accumulated holdings with node ``i xor
  2^k``.  All rounds run pair-parallel, so link time is O(log S) at full
  message size.
* **reduce-scatter + allgather** — recursive halving scatters ownership
  of query *chunks* (round *k* ships only the chunks belonging to the
  partner's half), then a doubling allgather spreads the fully reduced
  chunks back: ``2·log2 S`` steps shipping roughly half the bytes per
  step.

Non-power-of-two shard counts use the standard fold-in: shards beyond
the largest power of two ship their holdings to a partner in a pre-step
and sit out the butterfly.

**Determinism.**  Floating-point reduction is not associative, so the
*numeric* fold must not depend on which schedule moved the bytes.  All
schedules therefore route *piece-tagged* partials and defer any
numerically non-adjacent combination; the one true fold is
:func:`canonical_fold` — a fixed tournament over piece ids — applied
when a node holds every present piece of a query.  The message-size
model charges for that honesty: a holding that cannot yet fold ships as
multiple *segments* (one per maximal complete subtree of the
tournament), exactly the deterministic-reduction tax real allreduce
implementations pay for bitwise reproducibility.  Because pieces from
:meth:`~repro.comm.partition.IndexPartition.by_home_rank` are subtrees
of the single-node FAFNIR tree, the tournament reproduces the
single-node root association bit for bit.

Sparsity is first-class (the Tascade framing): a shard only holds — and
only ships — the queries its piece actually touches, so message bytes
track the workload's sharing structure rather than the batch size.

**Link faults.**  When a :class:`~repro.faults.plan.FaultPlan` with link
faults is installed, every message's wire time runs through
:meth:`_RoutingState.message_cycles`: a degraded (src, dst) link carries
the message at ``multiplier``× its modeled time, and a seeded drop costs
the policy's detection timeout plus a retransmitted wire time, up to
``max_link_retransmits`` attempts.  The fabric is *eventually reliable* —
in degrade mode an exhausted budget escalates to one host-mediated resend
that always delivers — so link faults inflate modeled cycles without ever
changing which bytes arrive: the canonical fold, and therefore the
numeric answer, is untouched.  Fail-fast mode raises
:class:`~repro.faults.plan.LinkFailedError` on exhaustion instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.faults.plan import (
    FAULT_LINK_DEGRADED,
    FAULT_LINK_LOSS,
    FaultPlan,
    LinkFailedError,
)
from repro.faults.policy import FaultPolicy
from repro.hw.link import LinkModel
from repro.obs.events import (
    FAULT_DETECTED,
    FAULT_INJECTED,
    MSG_DROPPED,
    MSG_RETRANSMITTED,
    SHARD_MSG_SENT,
    SHARD_REDUCED,
    TraceEvent,
)

#: Wire overhead per shipped segment: piece-range tag + query id + length.
SEGMENT_HEADER_BYTES = 8

SCHEDULE_GATHER = "gather"
SCHEDULE_REDUCE_SCATTER = "reduce_scatter"
SCHEDULE_RECURSIVE_DOUBLING = "recursive_doubling"


def _next_pow2(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def _prev_pow2(n: int) -> int:
    power = 1
    while power * 2 <= n:
        power *= 2
    return power


def canonical_fold(
    entries: Mapping[int, np.ndarray],
    num_pieces: int,
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """The one deterministic fold: a tournament over piece ids.

    Pieces are combined along a fixed balanced binary tree over
    ``[0, next_pow2(num_pieces))``; absent pieces are skipped without
    disturbing the association of the rest.  Invariant under schedule
    choice and shard-order permutation by construction, and — for
    subtree-aligned partitions — bitwise equal to the single-node FAFNIR
    root reduction.
    """
    if not entries:
        raise ValueError("cannot fold zero partials")

    def fold(lo: int, hi: int) -> Optional[np.ndarray]:
        if hi - lo == 1:
            return entries.get(lo)
        mid = (lo + hi) // 2
        left = fold(lo, mid)
        right = fold(mid, hi)
        if left is None:
            return right
        if right is None:
            return left
        return combine(left, right)

    result = fold(0, _next_pow2(num_pieces))
    assert result is not None
    return result


def segment_count(
    held: FrozenSet[int], present: FrozenSet[int], num_pieces: int
) -> int:
    """Segments needed to ship ``held`` without breaking the canonical fold.

    A run of held pieces may travel as one combined vector only if it
    forms a *complete subtree* of the tournament over the query's present
    pieces; anything else must stay piece-tagged.  The count is therefore
    the number of maximal tournament subtrees fully covered by ``held``.
    """
    if not held:
        return 0

    def count(lo: int, hi: int) -> int:
        window_present = [p for p in present if lo <= p < hi]
        if not window_present:
            return 0
        if all(p in held for p in window_present):
            return 1
        if hi - lo == 1:
            return 0  # present but not held
        mid = (lo + hi) // 2
        return count(lo, mid) + count(mid, hi)

    return count(0, _next_pow2(num_pieces))


@dataclass(frozen=True)
class CommMessage:
    """One modeled inter-shard message."""

    step: int
    src: int
    dst: int
    payload_bytes: int
    queries: int
    segments: int


@dataclass
class ScheduleOutcome:
    """Cost and routing results of one schedule over one batch's partials.

    ``comm_pe_cycles`` is the makespan of the synchronous step sequence;
    ``events`` carry relative cycles (step end, starting at 0) that the
    reducer re-bases onto the shards' local completion time.
    """

    schedule: str
    num_pieces: int
    steps: int
    messages: List[CommMessage] = field(default_factory=list)
    step_cycles: List[int] = field(default_factory=list)
    comm_pe_cycles: int = 0
    total_bytes: int = 0
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def message_count(self) -> int:
        return len(self.messages)


class _RoutingState:
    """Piece holdings per node plus the bookkeeping all schedules share."""

    def __init__(
        self,
        touched: Mapping[int, FrozenSet[int]],
        num_pieces: int,
        vector_bytes: int,
        link: LinkModel,
        schedule: str,
        faults: Optional[FaultPlan] = None,
        policy: Optional[FaultPolicy] = None,
        batch: int = 0,
    ) -> None:
        self.num_pieces = num_pieces
        self.vector_bytes = vector_bytes
        self.link = link
        self.faults = faults if faults is not None and faults.touches_links else None
        self.policy = policy if policy is not None else FaultPolicy()
        self.batch = batch
        self._pending_faults: List[Tuple[str, Dict[str, Any]]] = []
        # present[q]: pieces contributing to query q (global sparsity map;
        # a real deployment learns this from the query headers it already
        # routes, exactly like the engine's header algebra).
        self.present: Dict[int, FrozenSet[int]] = {}
        for piece, queries in touched.items():
            for query in queries:
                existing = self.present.get(query, frozenset())
                self.present[query] = existing | {piece}
        # hold[node][q]: pieces of q currently resident on the node.
        self.hold: List[Dict[int, FrozenSet[int]]] = [
            {query: frozenset({piece}) for query in touched.get(piece, frozenset())}
            for piece in range(num_pieces)
        ]
        self.outcome = ScheduleOutcome(schedule=schedule, num_pieces=num_pieces, steps=0)
        self._cursor = 0  # relative PE-cycle end of the last closed step

    # --- message construction ---------------------------------------------
    def payload(
        self, src: int, queries: Optional[Set[int]] = None
    ) -> Tuple[Dict[int, FrozenSet[int]], int, int]:
        """(holdings shipped, payload bytes, segment count) for one send."""
        holdings = self.hold[src]
        if queries is not None:
            holdings = {q: holdings[q] for q in queries if q in holdings}
        segments = 0
        for query, held in holdings.items():
            segments += segment_count(held, self.present[query], self.num_pieces)
        payload_bytes = segments * (self.vector_bytes + SEGMENT_HEADER_BYTES)
        return holdings, payload_bytes, segments

    def send(
        self, step: int, src: int, dst: int, queries: Optional[Set[int]] = None
    ) -> Optional[CommMessage]:
        """Ship (a slice of) ``src``'s holdings to ``dst``; empty → no wire."""
        holdings, payload_bytes, segments = self.payload(src, queries)
        if not holdings:
            return None
        for query, held in holdings.items():
            self.hold[dst][query] = self.hold[dst].get(query, frozenset()) | held
        if queries is not None:
            for query in list(holdings):
                del self.hold[src][query]
        message = CommMessage(
            step=step,
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            queries=len(holdings),
            segments=segments,
        )
        self.outcome.messages.append(message)
        self.outcome.total_bytes += payload_bytes
        return message

    # --- faulted wire time -------------------------------------------------
    def message_cycles(self, message: CommMessage) -> int:
        """Modeled wire time of one message, including injected link faults.

        With no link faults installed this is exactly
        ``link.transfer_pe_cycles(payload_bytes)`` — the clean path is
        byte- and cycle-identical to a build without the fault subsystem.
        """
        base = self.link.transfer_pe_cycles(message.payload_bytes)
        plan = self.faults
        if plan is None:
            return base
        site = {"step": message.step, "src": message.src, "dst": message.dst}
        multiplier = plan.link_multiplier(message.src, message.dst)
        per_attempt = base
        if multiplier > 1.0:
            per_attempt = int(math.ceil(base * multiplier))
            self._pending_faults.append(
                (
                    FAULT_INJECTED,
                    dict(site, fault=FAULT_LINK_DEGRADED, multiplier=multiplier),
                )
            )
        total = per_attempt
        attempt = 0
        while plan.message_dropped(
            self.batch, message.step, message.src, message.dst, attempt
        ):
            exhausted = attempt >= self.policy.max_link_retransmits
            self._pending_faults.append(
                (FAULT_INJECTED, dict(site, fault=FAULT_LINK_LOSS, attempt=attempt))
            )
            self._pending_faults.append(
                (
                    MSG_DROPPED,
                    dict(site, bytes=message.payload_bytes, attempt=attempt),
                )
            )
            self._pending_faults.append(
                (
                    FAULT_DETECTED,
                    dict(site, fault=FAULT_LINK_LOSS, fatal=exhausted),
                )
            )
            total += self.policy.link_timeout_cycles
            if exhausted:
                if self.policy.fail_fast:
                    raise LinkFailedError(
                        f"message step {message.step} {message.src}->"
                        f"{message.dst} lost after "
                        f"{self.policy.max_link_retransmits} retransmits"
                    )
                # Eventually-reliable escalation: one host-mediated resend
                # that always delivers, charged at the degraded wire time.
                total += per_attempt
                self._pending_faults.append(
                    (
                        MSG_RETRANSMITTED,
                        dict(site, attempt=attempt + 1, escalated=True),
                    )
                )
                break
            attempt += 1
            total += per_attempt
            self._pending_faults.append(
                (
                    MSG_RETRANSMITTED,
                    dict(site, attempt=attempt, escalated=False),
                )
            )
        return total

    def close_step(self, step: int, cycles: int, inbound: Dict[int, int]) -> None:
        """Account one synchronous step: duration, events, reduce marks."""
        self._cursor += cycles
        self.outcome.step_cycles.append(cycles)
        self.outcome.steps += 1
        for message in self.outcome.messages:
            if message.step == step:
                self.outcome.events.append(
                    TraceEvent(
                        SHARD_MSG_SENT,
                        cycle=self._cursor,
                        args={
                            "step": step,
                            "src": message.src,
                            "dst": message.dst,
                            "bytes": message.payload_bytes,
                            "queries": message.queries,
                            "segments": message.segments,
                        },
                    )
                )
        for node in sorted(inbound):
            self.outcome.events.append(
                TraceEvent(
                    SHARD_REDUCED,
                    cycle=self._cursor,
                    args={
                        "step": step,
                        "node": node,
                        "messages": inbound[node],
                        "queries": len(self.hold[node]),
                    },
                )
            )
        for kind, args in self._pending_faults:
            self.outcome.events.append(
                TraceEvent(kind, cycle=self._cursor, args=args)
            )
        self._pending_faults = []

    def finish(self, consumer: int = 0) -> ScheduleOutcome:
        """Close the outcome, asserting the consumer holds every partial."""
        for query, present in self.present.items():
            held = self.hold[consumer].get(query, frozenset())
            if not held >= present:
                raise RuntimeError(
                    f"schedule {self.outcome.schedule!r} left query {query} "
                    f"incomplete at node {consumer}: holds {sorted(held)} "
                    f"of {sorted(present)}"
                )
        self.outcome.comm_pe_cycles = self._cursor
        return self.outcome

    # --- shared building blocks -------------------------------------------
    def fold_in_extras(self, core: int) -> None:
        """Pre-step: shards beyond the power-of-two core ship to a partner."""
        if core >= self.num_pieces:
            return
        step = self.outcome.steps
        longest = 0
        inbound: Dict[int, int] = {}
        for src in range(core, self.num_pieces):
            message = self.send(step, src, src - core)
            if message is not None:
                longest = max(longest, self.message_cycles(message))
                inbound[src - core] = inbound.get(src - core, 0) + 1
        self.close_step(step, longest, inbound)


class ReductionSchedule:
    """Interface: route every shard's partials to the consumer (node 0)."""

    name: str

    def run(
        self,
        touched: Mapping[int, FrozenSet[int]],
        num_pieces: int,
        vector_bytes: int,
        link: LinkModel,
        faults: Optional[FaultPlan] = None,
        policy: Optional[FaultPolicy] = None,
        batch: int = 0,
    ) -> ScheduleOutcome:
        """Model one batch's cross-shard reduction.

        Args:
            touched: piece id → query positions that piece contributes to
                (the sparsity map; pieces may be absent).
            num_pieces: total shard count (piece ids are ``range`` of it).
            vector_bytes: bytes of one partial vector on the wire.
            link: inter-node link model.
            faults: optional chaos script — only its link faults apply here.
            policy: retransmit budget / timeout; defaults to fail-fast.
            batch: batch position, keying the seeded per-message decisions.
        """
        raise NotImplementedError


class GatherToRoot(ReductionSchedule):
    """Everybody ships to shard 0; the root ingress drains serially."""

    name = SCHEDULE_GATHER

    def run(self, touched, num_pieces, vector_bytes, link, faults=None, policy=None, batch=0):
        state = _RoutingState(
            touched, num_pieces, vector_bytes, link, self.name, faults, policy, batch
        )
        if num_pieces > 1:
            cycles = 0
            inbound: Dict[int, int] = {}
            for src in range(1, num_pieces):
                message = state.send(0, src, 0)
                if message is not None:
                    cycles += state.message_cycles(message)
                    inbound[0] = inbound.get(0, 0) + 1
            state.close_step(0, cycles, inbound)
        return state.finish()


class RecursiveDoubling(ReductionSchedule):
    """Butterfly exchange: ``log2 S`` pair-parallel full-size rounds."""

    name = SCHEDULE_RECURSIVE_DOUBLING

    def run(self, touched, num_pieces, vector_bytes, link, faults=None, policy=None, batch=0):
        state = _RoutingState(
            touched, num_pieces, vector_bytes, link, self.name, faults, policy, batch
        )
        core = _prev_pow2(num_pieces)
        state.fold_in_extras(core)
        distance = 1
        while distance < core:
            step = state.outcome.steps
            longest = 0
            inbound: Dict[int, int] = {}
            pair_cycles: Dict[Tuple[int, int], int] = {}
            for node in range(core):
                partner = node ^ distance
                message = state.send(step, node, partner)
                if message is not None:
                    cycles = state.message_cycles(message)
                    pair = (min(node, partner), max(node, partner))
                    if link.duplex:
                        longest = max(longest, cycles)
                    else:
                        pair_cycles[pair] = pair_cycles.get(pair, 0) + cycles
                    inbound[partner] = inbound.get(partner, 0) + 1
            if not link.duplex and pair_cycles:
                longest = max(pair_cycles.values())
            state.close_step(step, longest, inbound)
            distance *= 2
        return state.finish()


class ReduceScatterAllgather(ReductionSchedule):
    """Recursive halving over query chunks, then a doubling allgather."""

    name = SCHEDULE_REDUCE_SCATTER

    def run(self, touched, num_pieces, vector_bytes, link, faults=None, policy=None, batch=0):
        state = _RoutingState(
            touched, num_pieces, vector_bytes, link, self.name, faults, policy, batch
        )
        core = _prev_pow2(num_pieces)
        state.fold_in_extras(core)
        if core > 1:
            chunk_of = {query: query % core for query in state.present}
            # Recursive halving: shed the chunks belonging to the partner's
            # half, keep your own; after log2(core) rounds node i owns
            # exactly the fully-combined chunk i.
            distance = core // 2
            while distance >= 1:
                step = state.outcome.steps
                longest = 0
                inbound: Dict[int, int] = {}
                pair_cycles: Dict[Tuple[int, int], int] = {}
                for node in range(core):
                    partner = node ^ distance
                    to_ship = {
                        query
                        for query in state.hold[node]
                        if chunk_of[query] & distance == partner & distance
                    }
                    message = state.send(step, node, partner, to_ship)
                    if message is not None:
                        cycles = state.message_cycles(message)
                        pair = (min(node, partner), max(node, partner))
                        if link.duplex:
                            longest = max(longest, cycles)
                        else:
                            pair_cycles[pair] = pair_cycles.get(pair, 0) + cycles
                        inbound[partner] = inbound.get(partner, 0) + 1
                if not link.duplex and pair_cycles:
                    longest = max(pair_cycles.values())
                state.close_step(step, longest, inbound)
                distance //= 2
            # Doubling allgather: fully reduced chunks spread back out so
            # the consumer (and, symmetrically, every node) has the batch.
            distance = 1
            while distance < core:
                step = state.outcome.steps
                longest = 0
                inbound = {}
                pair_cycles = {}
                for node in range(core):
                    partner = node ^ distance
                    message = state.send(step, node, partner)
                    if message is not None:
                        cycles = state.message_cycles(message)
                        pair = (min(node, partner), max(node, partner))
                        if link.duplex:
                            longest = max(longest, cycles)
                        else:
                            pair_cycles[pair] = pair_cycles.get(pair, 0) + cycles
                        inbound[partner] = inbound.get(partner, 0) + 1
                if not link.duplex and pair_cycles:
                    longest = max(pair_cycles.values())
                state.close_step(step, longest, inbound)
                distance *= 2
        return state.finish()


SCHEDULES: Dict[str, ReductionSchedule] = {
    schedule.name: schedule
    for schedule in (GatherToRoot(), ReduceScatterAllgather(), RecursiveDoubling())
}


def get_schedule(name: str) -> ReductionSchedule:
    """Look up a schedule by name; raises ``KeyError`` for unknown names."""
    try:
        return SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown reduction schedule {name!r}; available: {sorted(SCHEDULES)}"
        ) from None
