"""Index-space partitioning for table-parallel sharding.

A single FAFNIR node holds every embedding table; at multi-node scale the
tables themselves are partitioned, each node owns a slice of the index
space, and a query's reduction spans nodes.  :class:`IndexPartition`
names that ownership: ``owner(index)`` → *piece* id (the shard holding
the index), plus the query-splitting helper the cross-shard reducer
needs.

Two constructors matter in practice:

* :meth:`IndexPartition.by_home_rank` — pieces are contiguous rank
  ranges of the single-node row-major placement (vector ``i`` lives in
  rank ``i mod R``).  When the piece count is a power of two dividing
  the leaf count, every piece is exactly an aligned subtree of the
  single-node reduction tree, so a shard's partial over its piece equals
  that subtree's value **bit for bit** and the canonical pairwise fold
  over pieces reproduces the single-node root association exactly — the
  property the reduction differential matrix asserts.
* :meth:`IndexPartition.contiguous` — equal index ranges over a known
  universe, the layout a range-sharded parameter server uses.  Useful in
  the property tests precisely because it is *not* subtree-aligned.

Partitions are plain picklable data so they ship to worker processes
alongside the engine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import FafnirConfig

#: Partition modes (how ``owner`` maps an index to a piece).
MODE_HOME_RANK = "home_rank"
MODE_CONTIGUOUS = "contiguous"
MODE_EXPLICIT = "explicit"


@dataclass(frozen=True)
class IndexPartition:
    """Ownership of the global index space by ``num_pieces`` shards.

    Construct through the classmethods; the raw fields describe one of
    three modes:

    * ``home_rank`` — ``rank_owner[index % total_ranks]`` decides.
    * ``contiguous`` — ``index // piece_span`` over a fixed universe.
    * ``explicit`` — a literal index → piece map (property tests).
    """

    num_pieces: int
    mode: str = MODE_HOME_RANK
    rank_owner: Tuple[int, ...] = ()
    total_ranks: int = 32
    piece_span: int = 0
    universe: int = 0
    explicit_owner: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_pieces < 1:
            raise ValueError("need at least one piece")
        if self.mode not in (MODE_HOME_RANK, MODE_CONTIGUOUS, MODE_EXPLICIT):
            raise ValueError(f"unknown partition mode {self.mode!r}")
        if self.mode == MODE_HOME_RANK and len(self.rank_owner) != self.total_ranks:
            raise ValueError(
                f"rank_owner covers {len(self.rank_owner)} ranks, "
                f"expected {self.total_ranks}"
            )

    # --- constructors ------------------------------------------------------
    @classmethod
    def by_home_rank(cls, config: FafnirConfig, pieces: int) -> "IndexPartition":
        """Partition by the single-node home rank, contiguous rank ranges.

        Ranks are divided into ``pieces`` contiguous runs, as evenly as
        possible, snapped onto leaf-PE boundaries whenever the leaf count
        allows.  A power-of-two ``pieces`` dividing the leaf count yields
        subtree-aligned pieces — the bit-exact composition case.
        """
        if pieces > config.total_ranks:
            raise ValueError(
                f"{pieces} pieces exceed {config.total_ranks} ranks "
                "(a piece must own at least one rank)"
            )
        per_leaf = config.ranks_per_leaf_pe
        owner: List[int] = []
        if config.num_leaf_pes >= pieces:
            # Divide whole leaves: every piece boundary is a leaf boundary.
            leaves_base, leaves_extra = divmod(config.num_leaf_pes, pieces)
            for piece in range(pieces):
                leaves = leaves_base + (1 if piece < leaves_extra else 0)
                owner.extend([piece] * (leaves * per_leaf))
        else:
            base, extra = divmod(config.total_ranks, pieces)
            for piece in range(pieces):
                owner.extend([piece] * (base + (1 if piece < extra else 0)))
        return cls(
            num_pieces=pieces,
            mode=MODE_HOME_RANK,
            rank_owner=tuple(owner),
            total_ranks=config.total_ranks,
        )

    @classmethod
    def contiguous(cls, universe: int, pieces: int) -> "IndexPartition":
        """Equal index ranges over ``[0, universe)`` (range sharding)."""
        if universe < 1:
            raise ValueError("universe must be positive")
        span = max(1, -(-universe // pieces))
        return cls(
            num_pieces=pieces,
            mode=MODE_CONTIGUOUS,
            piece_span=span,
            universe=universe,
        )

    @classmethod
    def explicit(cls, owner_of: Dict[int, int], pieces: int) -> "IndexPartition":
        """A literal index → piece map (arbitrary partitions, tests)."""
        for index, piece in owner_of.items():
            if not 0 <= piece < pieces:
                raise ValueError(
                    f"index {index} assigned to piece {piece} outside "
                    f"[0, {pieces})"
                )
        return cls(
            num_pieces=pieces,
            mode=MODE_EXPLICIT,
            explicit_owner=dict(owner_of),
        )

    # --- ownership ---------------------------------------------------------
    def owner(self, index: int) -> int:
        """The piece holding ``index``."""
        if index < 0:
            raise ValueError("index must be non-negative")
        if self.mode == MODE_HOME_RANK:
            return self.rank_owner[index % self.total_ranks]
        if self.mode == MODE_CONTIGUOUS:
            return min(index // self.piece_span, self.num_pieces - 1)
        try:
            return self.explicit_owner[index]
        except KeyError:
            raise KeyError(f"index {index} is not assigned to any piece") from None

    def split_query(self, query: Sequence[int]) -> Dict[int, List[int]]:
        """Per-piece sub-queries, preserving the query's index order.

        Pieces with no indices in the query are absent from the result —
        the sparse-awareness the message sizing relies on.
        """
        pieces: Dict[int, List[int]] = {}
        for index in query:
            pieces.setdefault(self.owner(int(index)), []).append(int(index))
        return pieces

    def subtree_aligned(self, config: FafnirConfig) -> bool:
        """Whether every piece is an aligned subtree of ``config``'s tree
        (the precondition for bit-exact single-node composition)."""
        if self.mode != MODE_HOME_RANK or config.total_ranks != self.total_ranks:
            return False
        pieces = self.num_pieces
        if pieces & (pieces - 1):
            return False
        leaves = config.num_leaf_pes
        if pieces > leaves or leaves % pieces:
            return False
        span = config.total_ranks // pieces
        return all(
            self.rank_owner[rank] == rank // span
            for rank in range(config.total_ranks)
        )
