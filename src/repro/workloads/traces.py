"""Query-trace I/O: record and replay embedding-lookup workloads.

Production systems evaluate NDP designs against recorded query traces (the
paper's authors used production-like traces we cannot redistribute).  This
module defines a small, stable on-disk format so synthetic traces can be
generated once and replayed deterministically across engines and runs:

* one query per line;
* a line is a comma-separated list of global vector indices;
* ``#``-prefixed lines are comments (the header records the generator
  parameters for provenance).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Union

from repro.workloads.embedding import EmbeddingTableSet, QueryGenerator

PathLike = Union[str, pathlib.Path]


@dataclass
class QueryTrace:
    """An ordered list of queries plus provenance metadata."""

    queries: List[List[int]]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for position, query in enumerate(self.queries):
            if not query:
                raise ValueError(f"query {position} is empty")
            if any(index < 0 for index in query):
                raise ValueError(f"query {position} contains a negative index")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[List[int]]:
        return iter(self.queries)

    @property
    def total_lookups(self) -> int:
        return sum(len(query) for query in self.queries)

    @property
    def distinct_indices(self) -> int:
        return len({index for query in self.queries for index in query})

    def batches(self, batch_size: int) -> List[List[List[int]]]:
        """Split the trace into consecutive batches (last may be short)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return [
            self.queries[start : start + batch_size]
            for start in range(0, len(self.queries), batch_size)
        ]

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write the trace in the one-query-per-line text format."""
        path = pathlib.Path(path)
        lines = [f"# {key}={value}" for key, value in sorted(self.metadata.items())]
        lines += [",".join(str(index) for index in query) for query in self.queries]
        path.write_text("\n".join(lines) + "\n")

    @staticmethod
    def load(path: PathLike) -> "QueryTrace":
        """Read a trace written by :meth:`save` (or by hand)."""
        path = pathlib.Path(path)
        metadata: dict = {}
        queries: List[List[int]] = []
        for line_number, raw in enumerate(path.read_text().splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if "=" in body:
                    key, _, value = body.partition("=")
                    metadata[key.strip()] = value.strip()
                continue
            try:
                queries.append([int(token) for token in line.split(",")])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: malformed query line {line!r}"
                ) from None
        if not queries:
            raise ValueError(f"{path}: trace contains no queries")
        return QueryTrace(queries=queries, metadata=metadata)

    # ------------------------------------------------------------------
    @staticmethod
    def synthesize(
        tables: EmbeddingTableSet,
        num_queries: int,
        query_len: int = 16,
        skew: float = 1.65,
        hot_rows: int = 48,
        seed: int = 0,
    ) -> "QueryTrace":
        """Generate a trace with the calibrated Zipfian generator."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        generator = QueryGenerator(
            tables, query_len=query_len, skew=skew, hot_rows=hot_rows, seed=seed
        )
        return QueryTrace(
            queries=generator.batch(num_queries),
            metadata={
                "num_tables": tables.num_tables,
                "rows_per_table": tables.rows_per_table,
                "query_len": query_len,
                "skew": skew,
                "hot_rows": hot_rows,
                "seed": seed,
            },
        )
