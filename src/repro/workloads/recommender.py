"""A complete toy recommendation model on the simulated accelerator.

The paper situates FAFNIR inside a DLRM-style pipeline: embedding lookup →
feature interaction → MLP → score (§II).  This module implements that whole
pipeline *functionally* — real numerics end to end — with the embedding
gather running on any :class:`~repro.baselines.base.GatherEngine`, so a user
can score candidates on FAFNIR and verify bit-identical results against the
CPU baseline, while the timing side composes gather measurements with the
roofline MLP model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import GatherEngine
from repro.workloads.embedding import EmbeddingTableSet
from repro.workloads.mlp import MlpConfig, mlp_latency_ms


@dataclass
class ScoredBatch:
    """Scores plus the latency composition of one inference batch."""

    scores: np.ndarray
    embedding_ms: float
    mlp_ms: float

    @property
    def total_ms(self) -> float:
        return self.embedding_ms + self.mlp_ms


class RecommendationModel:
    """DLRM-style scorer: pooled embeddings ⊕ dense features → MLP → score.

    The architecture (deliberately small but complete):

    * per-query pooled embedding vector, gathered-and-summed by the engine;
    * dense features pass through the bottom MLP;
    * feature interaction = concatenation of the pooled embedding, the
      bottom-MLP output, and their elementwise product;
    * the top MLP maps the interaction to one score (sigmoid).

    Weights are deterministic from ``seed`` so results are reproducible
    across engines and runs.
    """

    def __init__(
        self,
        tables: EmbeddingTableSet,
        dense_features: int = 16,
        hidden: int = 32,
        seed: int = 0,
    ) -> None:
        if dense_features < 1 or hidden < 1:
            raise ValueError("dense_features and hidden must be positive")
        self.tables = tables
        self.dense_features = dense_features
        self.hidden = hidden
        rng = np.random.default_rng(seed)
        d = tables.vector_elements
        scale = 1.0 / np.sqrt(max(dense_features, d))
        self._bottom_w = rng.normal(scale=scale, size=(dense_features, d))
        self._bottom_b = np.zeros(d)
        interaction = 3 * d  # pooled ‖ bottom ‖ pooled⊙bottom
        self._top1_w = rng.normal(scale=1.0 / np.sqrt(interaction), size=(interaction, hidden))
        self._top1_b = np.zeros(hidden)
        self._top2_w = rng.normal(scale=1.0 / np.sqrt(hidden), size=(hidden, 1))
        self._top2_b = np.zeros(1)

    # ------------------------------------------------------------------
    def _interact(self, pooled: np.ndarray, dense: np.ndarray) -> np.ndarray:
        bottom = np.maximum(dense @ self._bottom_w + self._bottom_b, 0.0)
        return np.concatenate([pooled, bottom, pooled * bottom], axis=-1)

    def _top(self, interaction: np.ndarray) -> np.ndarray:
        hidden = np.maximum(interaction @ self._top1_w + self._top1_b, 0.0)
        logits = hidden @ self._top2_w + self._top2_b
        return 1.0 / (1.0 + np.exp(-logits[..., 0]))

    def _mlp_config(self) -> MlpConfig:
        d = self.tables.vector_elements
        return MlpConfig(
            bottom_layers=(d,),
            top_layers=(self.hidden, 1),
            dense_features=self.dense_features,
            interaction_width=3 * d,
        )

    # ------------------------------------------------------------------
    def score(
        self,
        engine: GatherEngine,
        queries: Sequence[Sequence[int]],
        dense: np.ndarray,
    ) -> ScoredBatch:
        """Score one batch: each query is a candidate's sparse features,
        each ``dense`` row its dense features."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape != (len(queries), self.dense_features):
            raise ValueError(
                f"dense features have shape {dense.shape}; expected "
                f"({len(queries)}, {self.dense_features})"
            )
        gather = engine.lookup(queries, self.tables.vector)
        pooled = np.stack(gather.vectors)
        scores = self._top(self._interact(pooled, dense))
        mlp_ms = mlp_latency_ms(self._mlp_config(), batch_size=len(queries))
        return ScoredBatch(
            scores=scores,
            embedding_ms=gather.total_ns / 1e6,
            mlp_ms=mlp_ms,
        )

    def reference_scores(
        self, queries: Sequence[Sequence[int]], dense: np.ndarray
    ) -> np.ndarray:
        """NumPy-only oracle (no engine) for verification."""
        pooled = np.stack(
            [
                np.sum([self.tables.vector(i) for i in sorted(set(q))], axis=0)
                for q in queries
            ]
        )
        return self._top(self._interact(pooled, np.asarray(dense, dtype=np.float64)))

    def rank_candidates(
        self,
        engine: GatherEngine,
        queries: Sequence[Sequence[int]],
        dense: np.ndarray,
        top_k: int = 10,
    ) -> Tuple[List[int], ScoredBatch]:
        """Score and return the indices of the top-k candidates."""
        if top_k < 1:
            raise ValueError("top_k must be positive")
        batch = self.score(engine, queries, dense)
        order = list(np.argsort(batch.scores)[::-1][:top_k])
        return [int(i) for i in order], batch
