"""Embedding-table workloads (paper §II, §V and Fig. 4b).

The paper's reference workload is a recommendation model with 32 embedding
tables mapped onto 32 ranks: a query gathers one vector from each of up to
``q = 16`` tables, and vectors are identified by (table, row) pairs.  We
encode the global vector id as ``table + num_tables * row`` so that, with the
round-robin :class:`~repro.memory.mapping.RowMajorPlacement` over
``num_tables == total_ranks`` ranks, the table number *is* the rank selector —
exactly the paper's Fig. 4b address-bit mapping.

Real traces are proprietary, so query popularity is synthetic: rows are drawn
from a per-table Zipfian distribution whose skew is calibrated so that the
unique-index fraction of a batch reproduces the paper's Fig. 3 / Fig. 15
savings (34 % / 43 % / 58 % of accesses eliminated for B = 8/16/32).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class EmbeddingTableSet:
    """A set of embedding tables with lazily materialised vectors.

    Vectors are generated deterministically from (seed, global id), so a
    table set is reproducible without storing gigabytes — the value of a
    vector never matters to timing, only to functional verification.
    """

    num_tables: int = 32
    rows_per_table: int = 100_000
    vector_elements: int = 128
    seed: int = 0
    _cache: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.num_tables <= 0 or self.rows_per_table <= 0:
            raise ValueError("num_tables and rows_per_table must be positive")
        if self.vector_elements <= 0:
            raise ValueError("vector_elements must be positive")

    @staticmethod
    def random(
        num_tables: int = 32,
        rows_per_table: int = 100_000,
        vector_bytes: int = 512,
        element_bytes: int = 4,
        seed: int = 0,
    ) -> "EmbeddingTableSet":
        return EmbeddingTableSet(
            num_tables=num_tables,
            rows_per_table=rows_per_table,
            vector_elements=vector_bytes // element_bytes,
            seed=seed,
        )

    # ------------------------------------------------------------------
    @property
    def total_vectors(self) -> int:
        return self.num_tables * self.rows_per_table

    @property
    def vector_bytes(self) -> int:
        return self.vector_elements * 4

    def global_id(self, table: int, row: int) -> int:
        """(table, row) → global vector id; table bits select the rank."""
        if not 0 <= table < self.num_tables:
            raise ValueError(f"table {table} out of range")
        if not 0 <= row < self.rows_per_table:
            raise ValueError(f"row {row} out of range")
        return table + self.num_tables * row

    def decode(self, global_id: int) -> Tuple[int, int]:
        """Global vector id → (table, row)."""
        if not 0 <= global_id < self.total_vectors:
            raise ValueError(f"global id {global_id} out of range")
        row, table = divmod(global_id, self.num_tables)
        return table, row

    def vector(self, global_id: int) -> np.ndarray:
        """The stored embedding vector for a global id (deterministic)."""
        cached = self._cache.get(global_id)
        if cached is None:
            if not 0 <= global_id < self.total_vectors:
                raise ValueError(f"global id {global_id} out of range")
            rng = np.random.default_rng((self.seed << 32) ^ global_id)
            cached = rng.normal(size=self.vector_elements)
            self._cache[global_id] = cached
        return cached

    def storage_bytes(self) -> int:
        """Total table footprint — the multi-GB figure motivating NDP."""
        return self.total_vectors * self.vector_bytes


@dataclass
class QueryGenerator:
    """Synthetic batches of embedding-lookup queries.

    Each query selects ``query_len`` distinct tables and draws one row per
    table from a Zipfian popularity distribution with exponent ``skew``.
    ``skew = 0`` is uniform (essentially no shared indices for large tables);
    the calibrated default reproduces the paper's sharing levels.
    """

    tables: EmbeddingTableSet
    query_len: int = 16
    skew: float = 1.05
    hot_rows: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.query_len <= self.tables.num_tables:
            raise ValueError(
                "query_len must be between 1 and the number of tables "
                f"(got {self.query_len} for {self.tables.num_tables} tables)"
            )
        if self.skew < 0:
            raise ValueError("skew must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        pool = min(self.hot_rows, self.tables.rows_per_table)
        if self.skew > 0:
            weights = 1.0 / np.power(np.arange(1, pool + 1), self.skew)
            self._row_probabilities: Optional[np.ndarray] = weights / weights.sum()
        else:
            self._row_probabilities = None
        self._pool = pool
        # Popular rows are arbitrary rows of a huge table, not the first few:
        # scatter the hot pool across the table's full extent (deterministic
        # per table set, shared across generator seeds) so DRAM-row locality
        # is not an artifact of small row ids.
        scatter = np.random.default_rng(self.tables.seed ^ 0x5CA77E12)
        self._hot_row_ids = np.stack(
            [
                scatter.choice(self.tables.rows_per_table, size=pool, replace=False)
                for _ in range(self.tables.num_tables)
            ]
        )

    @staticmethod
    def paper_calibrated(
        tables: EmbeddingTableSet, seed: int = 0, query_len: int = 16
    ) -> "QueryGenerator":
        """Skew calibrated against the paper's Fig. 15 savings.

        With skew 1.65 over a 48-row hot pool per table, measured savings are
        ≈31 % / 46 % / 60 % for B = 8/16/32 against the paper's 34/43/58.
        """
        return QueryGenerator(
            tables, query_len=query_len, skew=1.65, hot_rows=48, seed=seed
        )

    # ------------------------------------------------------------------
    def _draw_row(self, table: int) -> int:
        if self._row_probabilities is None:
            return int(self._rng.integers(self.tables.rows_per_table))
        position = self._rng.choice(self._pool, p=self._row_probabilities)
        return int(self._hot_row_ids[table, position])

    def query(self) -> List[int]:
        """One query: ``query_len`` distinct tables, one Zipf row each."""
        tables = self._rng.choice(
            self.tables.num_tables, size=self.query_len, replace=False
        )
        return [
            self.tables.global_id(int(t), self._draw_row(int(t))) for t in tables
        ]

    def batch(self, batch_size: int) -> List[List[int]]:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return [self.query() for _ in range(batch_size)]

    def batches(self, count: int, batch_size: int) -> List[List[List[int]]]:
        return [self.batch(batch_size) for _ in range(count)]
