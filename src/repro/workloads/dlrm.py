"""End-to-end recommendation-inference latency model (paper Fig. 12).

The paper decomposes total inference latency into three components:

* **embedding lookup** — what FAFNIR/RecNMP accelerate; varies with the
  number of ranks;
* **fully-connected (FC) layers** — executed at the CPU, fixed at 0.5 ms in
  Fig. 12 regardless of rank count;
* **other operations** — feature interaction, data prep, etc.

This module composes those into end-to-end latency and speedup-over-baseline
so the Fig. 12 bench can sweep rank counts for each engine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InferenceBreakdown:
    """Latency components of one recommendation inference, in milliseconds."""

    embedding_ms: float
    fc_ms: float
    other_ms: float

    def __post_init__(self) -> None:
        if min(self.embedding_ms, self.fc_ms, self.other_ms) < 0:
            raise ValueError("latency components must be non-negative")

    @property
    def total_ms(self) -> float:
        return self.embedding_ms + self.fc_ms + self.other_ms

    def speedup_over(self, baseline: "InferenceBreakdown") -> float:
        if self.total_ms <= 0:
            raise ValueError("cannot compute speedup of a zero-latency run")
        return baseline.total_ms / self.total_ms


@dataclass(frozen=True)
class InferenceModel:
    """Fixed non-embedding costs of the recommendation model.

    Defaults follow Fig. 12: FC layers take 0.5 ms; 'other' covers the
    remaining fixed work.  Both are invariant to the memory-system size.
    """

    fc_ms: float = 0.5
    other_ms: float = 0.1

    def __post_init__(self) -> None:
        if self.fc_ms < 0 or self.other_ms < 0:
            raise ValueError("fixed latencies must be non-negative")

    def breakdown(self, embedding_ms: float) -> InferenceBreakdown:
        return InferenceBreakdown(
            embedding_ms=embedding_ms, fc_ms=self.fc_ms, other_ms=self.other_ms
        )

    def ideal_breakdown(
        self, baseline_embedding_ms: float, rank_factor: int
    ) -> InferenceBreakdown:
        """The red 'ideal linear' line of Fig. 12: embedding scales 1/ranks."""
        if rank_factor <= 0:
            raise ValueError("rank_factor must be positive")
        return self.breakdown(baseline_embedding_ms / rank_factor)
