"""Named SpMV workload suite standing in for the paper's matrices (Fig. 14).

The paper evaluates two groups — scientific computations (matrix-inversion
kernels) and graphs (including large road networks like "RO") — from inputs
we cannot redistribute.  This suite generates structurally matched synthetic
stand-ins; DESIGN.md §2 documents the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.sparse.generators import (
    laplacian_2d,
    random_sparse,
    rmat,
    road_mesh,
)
from repro.sparse.lil import LilMatrix


@dataclass(frozen=True)
class SpmvWorkload:
    """One named SpMV input with its evaluation group."""

    name: str
    group: str  # "scientific" or "graph"
    build: Callable[[], LilMatrix]
    description: str = ""

    def matrix(self) -> LilMatrix:
        return self.build()


def fig14_suite() -> List[SpmvWorkload]:
    """The Fig. 14 stand-in suite: small→large scientific + graph inputs."""
    return [
        SpmvWorkload(
            "sci-stencil-S",
            "scientific",
            lambda: laplacian_2d(45),
            "2 025-dof 5-point stencil (single chunk, no merge iterations)",
        ),
        SpmvWorkload(
            "sci-dense-band",
            "scientific",
            lambda: random_sparse(2000, 2000, 0.01, seed=11),
            "1 %-dense 2 000² system (single chunk)",
        ),
        SpmvWorkload(
            "sci-stencil-M",
            "scientific",
            lambda: laplacian_2d(90),
            "8 100-dof stencil (4 chunks, 1 merge iteration)",
        ),
        SpmvWorkload(
            "sci-stencil-L",
            "scientific",
            lambda: laplacian_2d(128),
            "16 384-dof stencil (8 chunks)",
        ),
        SpmvWorkload(
            "graph-rmat-S",
            "graph",
            lambda: rmat(13, edge_factor=8, seed=21),
            "8 K-vertex power-law graph",
        ),
        SpmvWorkload(
            "graph-rmat-M",
            "graph",
            lambda: rmat(15, edge_factor=8, seed=22),
            "32 K-vertex power-law graph",
        ),
        SpmvWorkload(
            "graph-road-RO",
            "graph",
            lambda: road_mesh(181, seed=23),
            "32 K-vertex road-network stand-in (the paper's 'RO' regime)",
        ),
        SpmvWorkload(
            "graph-road-L",
            "graph",
            lambda: road_mesh(256, seed=24),
            "65 K-vertex road network",
        ),
    ]


def suite_by_name() -> Dict[str, SpmvWorkload]:
    return {workload.name: workload for workload in fig14_suite()}
