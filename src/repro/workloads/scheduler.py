"""Software batch scheduling: which queries to group into hardware batches.

FAFNIR's redundant-access elimination works *within* a hardware batch
(§IV-C), so the host-side grouping of a query stream into batches changes
how many DRAM reads are saved.  The paper serves oversized software batches
"as several small batches at hardware" in arrival order; this module adds a
sharing-aware alternative and the machinery to compare policies:

* :class:`FifoScheduler` — arrival order (the paper's implicit policy);
* :class:`SharingAwareScheduler` — greedily co-schedules queries that share
  indices, increasing per-batch dedup at the cost of reordering.

Both are online-feasible: they look only at a bounded window of pending
queries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.batch import plan_batch


@dataclass
class ScheduleReport:
    """Dedup quality of one batching of a query stream."""

    batches: List[List[List[int]]]
    total_lookups: int
    total_reads: int

    @property
    def accesses_saved(self) -> int:
        return self.total_lookups - self.total_reads

    @property
    def savings_fraction(self) -> float:
        return (
            self.accesses_saved / self.total_lookups if self.total_lookups else 0.0
        )


def evaluate_schedule(batches: Sequence[Sequence[Sequence[int]]]) -> ScheduleReport:
    """Count the deduplicated reads a batching would issue."""
    total_lookups = 0
    total_reads = 0
    materialised: List[List[List[int]]] = []
    for batch in batches:
        if not batch:
            continue
        plan = plan_batch(batch)
        total_lookups += plan.total_lookups
        total_reads += len(plan.unique_indices)
        materialised.append([list(query) for query in batch])
    return ScheduleReport(
        batches=materialised,
        total_lookups=total_lookups,
        total_reads=total_reads,
    )


class BatchScheduler(abc.ABC):
    """Groups a stream of queries into hardware-sized batches."""

    def __init__(self, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size

    @abc.abstractmethod
    def schedule(self, queries: Sequence[Sequence[int]]) -> List[List[List[int]]]:
        """Partition the stream into batches of at most ``batch_size``."""

    def report(self, queries: Sequence[Sequence[int]]) -> ScheduleReport:
        return evaluate_schedule(self.schedule(queries))


class FifoScheduler(BatchScheduler):
    """Arrival-order batching — the paper's behaviour for large software
    batches (§IV-B)."""

    def schedule(self, queries: Sequence[Sequence[int]]) -> List[List[List[int]]]:
        return [
            [list(query) for query in queries[start : start + self.batch_size]]
            for start in range(0, len(queries), self.batch_size)
        ]


class SharingAwareScheduler(BatchScheduler):
    """Greedy sharing-aware batching within a bounded reorder window.

    Builds each batch by seeding it with the oldest pending query, then
    repeatedly pulling, from the next ``window`` pending queries, the one
    with the largest index overlap with the batch so far.  Queries never
    wait more than ``window`` batch-formations, bounding added latency.
    """

    def __init__(self, batch_size: int, window: int = 128) -> None:
        super().__init__(batch_size)
        if window < batch_size:
            raise ValueError("window must be at least the batch size")
        self.window = window

    def schedule(self, queries: Sequence[Sequence[int]]) -> List[List[List[int]]]:
        pending: List[List[int]] = [list(query) for query in queries]
        batches: List[List[List[int]]] = []
        while pending:
            batch: List[List[int]] = [pending.pop(0)]
            covered = set(batch[0])
            while len(batch) < self.batch_size and pending:
                horizon = min(self.window, len(pending))
                best_position = 0
                best_overlap = -1
                for position in range(horizon):
                    overlap = len(covered & set(pending[position]))
                    if overlap > best_overlap:
                        best_overlap = overlap
                        best_position = position
                chosen = pending.pop(best_position)
                covered.update(chosen)
                batch.append(chosen)
            batches.append(batch)
        return batches
