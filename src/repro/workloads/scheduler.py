"""Software batch scheduling: which queries to group into hardware batches.

FAFNIR's redundant-access elimination works *within* a hardware batch
(§IV-C), so the host-side grouping of a query stream into batches changes
how many DRAM reads are saved.  The paper serves oversized software batches
"as several small batches at hardware" in arrival order; this module adds a
sharing-aware alternative and the machinery to compare policies:

* :class:`FifoScheduler` — arrival order (the paper's implicit policy);
* :class:`SharingAwareScheduler` — greedily co-schedules queries that share
  indices, increasing per-batch dedup at the cost of reordering.

Both are online-feasible: they look only at a bounded window of pending
queries.  :class:`SharingAwareScheduler` exposes its single-batch formation
step (:meth:`SharingAwareScheduler.form_batch` over :class:`PendingQuery`
entries) so the online serving layer (:mod:`repro.serving`) can form batches
continuously from an arrival stream instead of a complete offline list.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from repro.core.batch import plan_batch


def _freeze(query: Sequence[int]) -> FrozenSet[int]:
    """The index set of one query.

    Built exactly once per admitted query — never per (slot, candidate)
    comparison.  The perf regression test counts calls to this hook to pin
    the O(window × batch) set-rebuild bug closed.
    """
    return frozenset(query)


@dataclass
class PendingQuery:
    """One query waiting to be placed into a hardware batch.

    Carries the precomputed index set (so candidate matching never rebuilds
    it) and an aging counter: ``age`` counts the batch formations this query
    has sat through since admission.  ``payload`` is an opaque slot for
    callers that schedule richer objects than bare index lists (the serving
    layer stores its :class:`~repro.serving.loadgen.Request` there).
    """

    indices: List[int]
    index_set: Optional[FrozenSet[int]] = None
    age: int = 0
    payload: Optional[object] = None

    def __post_init__(self) -> None:
        if self.index_set is None:
            self.index_set = _freeze(self.indices)

    @staticmethod
    def wrap(query: Sequence[int], payload: Optional[object] = None) -> "PendingQuery":
        return PendingQuery(indices=list(query), payload=payload)


@dataclass
class ScheduleReport:
    """Dedup quality of one batching of a query stream."""

    batches: List[List[List[int]]]
    total_lookups: int
    total_reads: int

    @property
    def accesses_saved(self) -> int:
        return self.total_lookups - self.total_reads

    @property
    def savings_fraction(self) -> float:
        return (
            self.accesses_saved / self.total_lookups if self.total_lookups else 0.0
        )


def evaluate_schedule(batches: Sequence[Sequence[Sequence[int]]]) -> ScheduleReport:
    """Count the deduplicated reads a batching would issue.

    ``ScheduleReport.batches`` aligns position-for-position with the input:
    an empty batch stays an empty list (contributing zero lookups and zero
    reads) rather than being silently dropped, so callers can zip the report
    against the schedule they passed in.
    """
    total_lookups = 0
    total_reads = 0
    materialised: List[List[List[int]]] = []
    for batch in batches:
        if batch:
            plan = plan_batch(batch)
            total_lookups += plan.total_lookups
            total_reads += len(plan.unique_indices)
            materialised.append([list(query) for query in batch])
        else:
            materialised.append([])
    return ScheduleReport(
        batches=materialised,
        total_lookups=total_lookups,
        total_reads=total_reads,
    )


class BatchScheduler(abc.ABC):
    """Groups a stream of queries into hardware-sized batches."""

    def __init__(self, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size

    @abc.abstractmethod
    def schedule(self, queries: Sequence[Sequence[int]]) -> List[List[List[int]]]:
        """Partition the stream into batches of at most ``batch_size``."""

    def report(self, queries: Sequence[Sequence[int]]) -> ScheduleReport:
        return evaluate_schedule(self.schedule(queries))


class FifoScheduler(BatchScheduler):
    """Arrival-order batching — the paper's behaviour for large software
    batches (§IV-B)."""

    def schedule(self, queries: Sequence[Sequence[int]]) -> List[List[List[int]]]:
        return [
            [list(query) for query in queries[start : start + self.batch_size]]
            for start in range(0, len(queries), self.batch_size)
        ]


class SharingAwareScheduler(BatchScheduler):
    """Greedy sharing-aware batching within a bounded reorder window.

    Builds each batch by seeding it with the oldest pending query, then
    repeatedly pulling, from the next ``window`` pending queries, the one
    with the largest index overlap with the batch so far.

    **Bounded unfairness.**  Every batch formation a pending query sits
    through increments its age; once a query's age reaches ``window`` it is
    *urgent* and is dispatched in FIFO order ahead of any overlap-based
    pick.  A query can therefore be passed over at most ``window`` times —
    reordering delays it by at most ``window`` batch-formations relative to
    its FIFO position — no matter how little it shares with its neighbours.
    (Pending order is admission order and ages only ever grow in lock-step,
    so urgent queries always form a prefix of the pending list.)
    """

    def __init__(self, batch_size: int, window: int = 128) -> None:
        super().__init__(batch_size)
        if window < batch_size:
            raise ValueError("window must be at least the batch size")
        self.window = window

    def schedule(self, queries: Sequence[Sequence[int]]) -> List[List[List[int]]]:
        pending = [PendingQuery.wrap(query) for query in queries]
        batches: List[List[List[int]]] = []
        while pending:
            batches.append([entry.indices for entry in self.form_batch(pending)])
        return batches

    def form_batch(self, pending: List[PendingQuery]) -> List[PendingQuery]:
        """Remove and return one batch's entries from ``pending``.

        ``pending`` must be in admission order; entries left behind have
        their ``age`` incremented.  This is the reusable single-step the
        online serving layer drives directly.
        """
        if not pending:
            raise ValueError("cannot form a batch from no pending queries")
        seed = pending.pop(0)
        batch = [seed]
        covered = set(seed.index_set)
        while len(batch) < self.batch_size and pending:
            if pending[0].age >= self.window:
                # Urgent prefix drains FIFO: this query has already been
                # passed over `window` times and may not be jumped again.
                chosen = pending.pop(0)
            else:
                horizon = min(self.window, len(pending))
                best_position = 0
                best_overlap = -1
                for position in range(horizon):
                    overlap = len(covered & pending[position].index_set)
                    if overlap > best_overlap:
                        best_overlap = overlap
                        best_position = position
                chosen = pending.pop(best_position)
            covered.update(chosen.index_set)
            batch.append(chosen)
        for entry in pending:
            entry.age += 1
        return batch
