"""Workload generators: embedding lookups, DLRM inference, SpMV suites."""

from repro.workloads.dlrm import InferenceBreakdown, InferenceModel
from repro.workloads.embedding import EmbeddingTableSet, QueryGenerator
from repro.workloads.scheduler import (
    BatchScheduler,
    FifoScheduler,
    PendingQuery,
    ScheduleReport,
    SharingAwareScheduler,
    evaluate_schedule,
)
from repro.workloads.mlp import MlpConfig, calibrated_fc_batch, mlp_latency_ms
from repro.workloads.recommender import RecommendationModel, ScoredBatch
from repro.workloads.suites import SpmvWorkload, fig14_suite, suite_by_name
from repro.workloads.traces import QueryTrace

__all__ = [
    "BatchScheduler",
    "EmbeddingTableSet",
    "FifoScheduler",
    "PendingQuery",
    "QueryTrace",
    "ScheduleReport",
    "SharingAwareScheduler",
    "evaluate_schedule",
    "InferenceBreakdown",
    "MlpConfig",
    "RecommendationModel",
    "ScoredBatch",
    "calibrated_fc_batch",
    "mlp_latency_ms",
    "InferenceModel",
    "QueryGenerator",
    "SpmvWorkload",
    "fig14_suite",
    "suite_by_name",
]
