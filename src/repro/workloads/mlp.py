"""MLP latency model for the recommendation model's dense layers.

The paper fixes FC-layer latency at 0.5 ms in Fig. 12 and notes it "varies
significantly based on the host system (CPU vs GPU) and batch size".  This
module derives that number from first principles — layer shapes × a
roofline over the host's peak compute and bandwidth — so users can ask what
the end-to-end picture looks like on *their* host instead of the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.analysis.roofline import Roofline, SERVER_ROOFLINE


@dataclass(frozen=True)
class MlpConfig:
    """A DLRM-style top/bottom MLP stack.

    Defaults follow the published DLRM RM-2 shape family: a bottom MLP over
    dense features and a top MLP over the concatenated interactions.
    """

    bottom_layers: Tuple[int, ...] = (256, 128, 128)
    top_layers: Tuple[int, ...] = (512, 256, 1)
    dense_features: int = 256
    interaction_width: int = 512
    element_bytes: int = 4

    def __post_init__(self) -> None:
        if not self.bottom_layers or not self.top_layers:
            raise ValueError("MLPs need at least one layer")
        if min(self.bottom_layers + self.top_layers) < 1:
            raise ValueError("layer widths must be positive")
        if self.dense_features < 1 or self.interaction_width < 1:
            raise ValueError("feature widths must be positive")

    def _stack_shapes(self) -> List[Tuple[int, int]]:
        shapes: List[Tuple[int, int]] = []
        previous = self.dense_features
        for width in self.bottom_layers:
            shapes.append((previous, width))
            previous = width
        previous = self.interaction_width
        for width in self.top_layers:
            shapes.append((previous, width))
            previous = width
        return shapes

    def flops(self, batch_size: int) -> int:
        """Multiply-accumulate FLOPs for one batch (2 per MAC)."""
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        return sum(
            2 * batch_size * rows * cols for rows, cols in self._stack_shapes()
        )

    def weight_bytes(self) -> int:
        return sum(
            rows * cols * self.element_bytes for rows, cols in self._stack_shapes()
        )

    def activation_bytes(self, batch_size: int) -> int:
        widths = [self.dense_features, *self.bottom_layers]
        widths += [self.interaction_width, *self.top_layers]
        return sum(batch_size * width * self.element_bytes for width in widths)


def mlp_latency_ms(
    config: MlpConfig,
    batch_size: int,
    roofline: Roofline = SERVER_ROOFLINE,
    efficiency: float = 0.5,
) -> float:
    """Roofline-bounded MLP latency in milliseconds.

    The stack's time is the max of its compute-bound time (FLOPs over the
    achievable fraction of peak) and its memory-bound time (weights +
    activations over peak bandwidth).
    """
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    flops = config.flops(batch_size)
    bytes_moved = config.weight_bytes() + config.activation_bytes(batch_size)
    compute_ns = flops / (roofline.peak_gflops * efficiency)
    memory_ns = bytes_moved / roofline.peak_bandwidth_gbps
    return max(compute_ns, memory_ns) / 1e6


def calibrated_fc_batch(
    config: MlpConfig = None,
    target_ms: float = 0.5,
    roofline: Roofline = SERVER_ROOFLINE,
    max_batch: int = 65536,
) -> int:
    """Batch size at which this MLP reaches the paper's 0.5 ms FC figure."""
    config = config or MlpConfig()
    if target_ms <= 0:
        raise ValueError("target_ms must be positive")
    batch = 1
    while batch <= max_batch:
        if mlp_latency_ms(config, batch, roofline) >= target_ms:
            return batch
        batch *= 2
    return max_batch
