"""Command-line interface for the FAFNIR reproduction.

Subcommands mirror the things a user actually does with the library:

* ``lookup``  — run a batch of embedding lookups on a chosen engine and
  print latency/data-movement measurements;
* ``compare`` — run the same batch on every engine and print the
  Fig. 11/13-style comparison table;
* ``spmv``    — multiply a synthetic sparse matrix on FAFNIR vs Two-Step;
* ``pagerank`` — rank a synthetic graph end to end;
* ``hw``      — print the hardware bookkeeping tables (buffers, area,
  power, FPGA utilization, connections);
* ``trace``   — capture a cycle-level event trace of one FAFNIR batch as
  Chrome ``trace_event`` JSON (open in Perfetto / ``chrome://tracing``)
  and print the derived metrics;
* ``chaos``   — run a seeded fault-injection sweep (degraded ranks, flaky
  reads, vector corruption, a crashing shard worker) through the sharded
  runner under the graceful-degradation policy and print the recovery
  report: injected vs detected vs recovered, per-query statuses, and the
  p99 latency inflation against a clean baseline;
* ``serve``   — drive the online serving front-end: Poisson (or
  closed-loop) arrivals at one or more QPS levels through the admission +
  continuous-batching scheduler under a latency SLO, printing p50/p99
  latency, SLO attainment, dedup savings, and mean batch size per level;
* ``reduce``  — sweep the cross-shard reduction schedules (gather-to-root,
  reduce-scatter + allgather, recursive-doubling) over shard counts on a
  modeled inter-node link, verifying every cell byte-identical to the
  single-node engine and printing messages/bytes/steps/comm-cycle costs;
* ``cache``   — sweep the opt-in hot-index tier (``src/repro/tiering``)
  over per-rank cache sizes and Zipf skews: hit rate, DRAM reads saved on
  top of dedup alone, and p99 query latency per cell, with every cached
  run verified byte-identical to its uncached twin.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import Table
from repro.baselines import (
    CentaurGatherEngine,
    CpuGatherEngine,
    FafnirGatherEngine,
    RecNmpGatherEngine,
    TensorDimmGatherEngine,
)
from repro.baselines.twostep import TwoStepSpmvEngine
from repro.core import FafnirConfig
from repro.hw import (
    AsicPower,
    ConnectionComparison,
    reference_system_area,
    size_buffers,
    table5,
)
from repro.core.engine import FafnirEngine
from repro.core.sharding import ShardedRunner, fleet_makespan_pe_cycles, shard_batches
from repro.core.stats import tree_utilization
from repro.faults import FaultPlan, FaultPolicy, STATUSES, recovery_report
from repro.obs import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    Tracer,
    metrics_from_events,
    per_level_counts,
)
from repro.sparse import laplacian_2d, rmat
from repro.experiments import get_experiment, list_experiments
from repro.validation import validate_anchors
from repro.spmv import FafnirSpmvEngine, pagerank
from repro.workloads import EmbeddingTableSet, QueryGenerator

ENGINES = {
    "fafnir": lambda: FafnirGatherEngine(),
    "recnmp": lambda: RecNmpGatherEngine(),
    "recnmp-cache": lambda: RecNmpGatherEngine(with_cache=True),
    "tensordimm": lambda: TensorDimmGatherEngine(),
    "centaur": lambda: CentaurGatherEngine(),
    "cpu": lambda: CpuGatherEngine(),
}


def _make_batch(batch_size: int, query_len: int, seed: int):
    tables = EmbeddingTableSet.random(seed=seed)
    generator = QueryGenerator.paper_calibrated(
        tables, seed=seed, query_len=query_len
    )
    return tables, generator.batch(batch_size)


def _cmd_lookup(args: argparse.Namespace) -> int:
    tables, batch = _make_batch(args.batch_size, args.query_len, args.seed)
    engine = ENGINES[args.engine]()
    result = engine.lookup(batch, tables.vector)
    timing = result.timing
    print(f"engine: {args.engine}")
    print(f"batch: {len(batch)} queries × {args.query_len} lookups")
    print(f"total latency: {timing.total_ns / 1000:.2f} µs")
    print(
        f"  memory {timing.memory_ns / 1000:.2f} µs | ndp "
        f"{timing.ndp_compute_ns / 1000:.2f} µs | core "
        f"{timing.core_compute_ns / 1000:.2f} µs | transfer "
        f"{timing.transfer_ns / 1000:.2f} µs"
    )
    print(f"DRAM reads: {result.dram_reads}, bytes to core: {result.bytes_to_core}")
    if result.cache_hits:
        print(f"cache hits: {result.cache_hits}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    tables, batch = _make_batch(args.batch_size, args.query_len, args.seed)
    table = Table(["engine", "total_us", "speedup_vs_cpu", "bytes_to_core", "dram_reads"])
    baseline_ns: Optional[float] = None
    for name in ("cpu", "tensordimm", "centaur", "recnmp", "recnmp-cache", "fafnir"):
        result = ENGINES[name]().lookup(batch, tables.vector)
        if baseline_ns is None:
            baseline_ns = result.total_ns
        table.add_row(
            [
                name,
                f"{result.total_ns / 1000:.2f}",
                f"{baseline_ns / result.total_ns:.2f}×",
                result.bytes_to_core,
                result.dram_reads,
            ]
        )
    print(table.render())
    return 0


def _cmd_spmv(args: argparse.Namespace) -> int:
    if args.kind == "stencil":
        matrix = laplacian_2d(args.size)
    else:
        matrix = rmat(args.size.bit_length(), edge_factor=8, seed=args.seed)
    x = np.random.default_rng(args.seed).normal(size=matrix.shape[1])
    fafnir = FafnirSpmvEngine().multiply(matrix, x)
    twostep = TwoStepSpmvEngine().multiply(matrix, x)
    assert np.allclose(fafnir.y, twostep.y)
    table = Table(["engine", "step1_us", "merge_us", "total_us"])
    for name, stats in (("fafnir", fafnir.stats), ("two-step", twostep.stats)):
        table.add_row(
            [
                name,
                f"{stats.step1_ns / 1000:.1f}",
                f"{stats.merge_ns / 1000:.1f}",
                f"{stats.total_ns / 1000:.1f}",
            ]
        )
    print(f"matrix: {matrix.shape[0]}×{matrix.shape[1]}, nnz {matrix.nnz}")
    print(table.render())
    print(
        f"fafnir speedup: {twostep.stats.total_ns / fafnir.stats.total_ns:.2f}×"
    )
    return 0


def _cmd_pagerank(args: argparse.Namespace) -> int:
    graph = rmat(args.scale, edge_factor=8, seed=args.seed)
    result = pagerank(graph, FafnirSpmvEngine(), tolerance=args.tolerance)
    print(
        f"graph: {graph.shape[0]} vertices, {graph.nnz} edges — "
        f"converged={result.converged} in {result.iterations} iterations, "
        f"modelled hw time {result.total_ns / 1e6:.3f} ms"
    )
    top = np.argsort(result.values)[::-1][: args.top]
    for vertex in top:
        print(f"  vertex {vertex}: {result.values[vertex]:.6f}")
    return 0


def _cmd_hw(args: argparse.Namespace) -> int:
    config = FafnirConfig(batch_size=args.batch_size)
    sizing = size_buffers(config)
    area = reference_system_area()
    power = AsicPower()
    connections = ConnectionComparison(
        memory_devices=config.total_ranks, compute_devices=4
    )
    table = Table(["quantity", "value"])
    table.add_row(["PEs", config.num_pes])
    table.add_row(["tree levels", config.tree_levels])
    table.add_row(["PE buffer (KB)", f"{sizing.pe_buffer_kb:.1f}"])
    table.add_row(["DIMM/rank node buffer (KB)", f"{sizing.dimm_rank_node_kb:.1f}"])
    table.add_row(["system area (mm²)", f"{area.total_mm2:.3f}"])
    table.add_row(["system power (mW)", f"{power.total_mw:.2f}"])
    table.add_row(["connections (tree)", connections.fafnir])
    table.add_row(["connections (all-to-all)", connections.all_to_all])
    print(table.render())
    print("\nFPGA utilization (XCVU9P, %):")
    for resource, percent in table5().items():
        print(f"  {resource:8s} {percent:6.2f}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list or not args.run:
        for experiment in list_experiments():
            print(f"  {experiment.experiment_id:12s} {experiment.title}")
        return 0
    for experiment_id in args.run:
        result = get_experiment(experiment_id).run()
        print(result.render())
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = FafnirConfig(batch_size=args.batch_size)
    tables, batch = _make_batch(args.batch_size, args.query_len, args.seed)
    memory_sink = InMemorySink()
    tracer = Tracer([memory_sink, ChromeTraceSink(args.out)])
    if args.jsonl:
        tracer.add_sink(JsonlSink(args.jsonl))
    engine = FafnirEngine(config=config, kernel=args.kernel, tracer=tracer)
    result = engine.run_batch(batch, tables.vector, deduplicate=args.dedup)
    tracer.close()

    events = memory_sink.events
    print(f"traced {len(batch)} queries × {args.query_len} lookups")
    print(f"chrome trace: {args.out} ({len(events)} events)")
    if args.jsonl:
        print(f"jsonl trace:  {args.jsonl}")

    # Cross-check: reduce events per level must equal the LookupStats
    # level aggregation — the two observability paths agree or the run
    # is untrustworthy.
    utilization = tree_utilization(
        engine.tree, result.stats, engine.memory.config.geometry
    )
    event_levels = per_level_counts(events)
    table = Table(["level", "pes", "reduces(stats)", "reduces(events)"])
    mismatch = False
    for level in utilization.levels:
        traced = event_levels.get(level.level, 0)
        mismatch = mismatch or traced != level.work.reduces
        table.add_row([level.level, level.pes, level.work.reduces, traced])
    print(table.render())
    if mismatch:
        print("MISMATCH between event stream and LookupStats aggregation")
        return 1

    snapshot = metrics_from_events(events).snapshot()
    print("\nevent counts:")
    for name, value in snapshot["counters"].items():
        if name.startswith("events."):
            print(f"  {name[len('events.'):]:18s} {value}")
    latency = snapshot["histograms"].get("query.latency_pe_cycles")
    if latency:
        print(
            "query latency (PE cycles): "
            f"p50 {latency['p50']:.0f} | p95 {latency['p95']:.0f} | "
            f"p99 {latency['p99']:.0f} | max {latency['max']:.0f}"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Seeded chaos sweep through the fault-tolerant sharded runner."""
    import json

    from repro.obs.sinks import chrome_trace_json

    if args.quick:
        batches, shards, batch_size, query_len = 2, 2, 8, 8
    else:
        batches, shards, batch_size, query_len = 8, 4, 32, 16
    tables = EmbeddingTableSet.random(seed=args.seed)
    generator = QueryGenerator.paper_calibrated(
        tables, seed=args.seed, query_len=query_len
    )
    stream = [generator.batch(batch_size) for _ in range(batches)]
    shard_streams = shard_batches(stream, shards)
    total_queries = sum(len(batch) for batch in stream)

    clean_runner = ShardedRunner(trace=True)
    clean = clean_runner.run(shard_streams, tables.vector)

    plan = FaultPlan(
        seed=args.seed,
        rank_latency_multipliers={0: 4.0, 1: 4.0},
        rank_timeout_probability={2: 0.2},
        vector_corruption_probability=0.01,
        crash_shards=frozenset({0}),
        crash_attempts=1,
    )
    policy = FaultPolicy.graceful(shard_timeout_s=args.shard_timeout)
    runner = ShardedRunner(trace=True, faults=plan, fault_policy=policy)
    results = runner.run(shard_streams, tables.vector)

    events = [
        event
        for result in results
        for event in (result.events or [])
    ]
    statuses = [status for result in results for status in result.statuses]
    print(
        f"chaos run: seed {args.seed}, {total_queries} queries in "
        f"{batches} batches across {len(shard_streams)} shards"
    )
    print(
        "faults: ranks 0,1 degraded 4.0×, rank 2 flaky (p=0.2), "
        "1% vector corruption, shard 0 worker crash"
    )
    print()
    print(recovery_report(events).render())

    counts = {status: statuses.count(status) for status in STATUSES}
    accounted = sum(counts.values())
    print(
        f"  query statuses: "
        + ", ".join(f"{counts[s]} {s}" for s in STATUSES)
        + f" ({accounted}/{total_queries} accounted)"
    )

    clean_p99 = (
        metrics_from_events(
            [e for r in clean for e in (r.events or [])]
        )
        .histogram("query.latency_pe_cycles")
        .percentile(99)
    )
    chaos_p99 = (
        metrics_from_events(events)
        .histogram("query.latency_pe_cycles")
        .percentile(99)
    )
    inflation = chaos_p99 / clean_p99 if clean_p99 else 0.0
    print(
        f"  p99 query latency: {clean_p99:.0f} → {chaos_p99:.0f} PE cycles "
        f"({inflation:.2f}× inflation)"
    )
    print(
        f"  fleet makespan: {fleet_makespan_pe_cycles(clean)} → "
        f"{fleet_makespan_pe_cycles(results)} PE cycles"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(chrome_trace_json(events), handle)
        print(f"  chrome trace: {args.out} ({len(events)} events)")
    return 0 if accounted == total_queries else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Online serving sweep: one simulated run per offered QPS level."""
    from repro.serving import (
        ClosedLoopGenerator,
        ContinuousBatcher,
        OpenLoopGenerator,
        RampStage,
        ServingSimulator,
    )

    qps_levels = args.qps or ([0.5e6, 4e6] if args.quick else [0.5e6, 2e6, 6e6, 12e6])
    n_requests = 120 if args.quick else args.requests
    tables = EmbeddingTableSet.random(seed=args.seed)
    tier = None
    if args.cache_kb:
        from repro.tiering import HotTierConfig

        tier = HotTierConfig(
            size_bytes=args.cache_kb * 1024, line_bytes=tables.vector_bytes
        )
    columns = [
        "offered_qps",
        "requests",
        "mean_batch",
        "interactive",
        "p50_us",
        "p99_us",
        "slo_attain",
        "dedup_savings",
    ]
    if tier is not None:
        columns.append("cache_hit")
    table = Table(columns)
    worst_attainment = 1.0
    for qps in qps_levels:
        queries = QueryGenerator.paper_calibrated(
            tables, seed=args.seed + 1, query_len=args.query_len
        )
        if args.closed_loop:
            load = ClosedLoopGenerator(
                queries,
                users=args.users,
                think_time_us=args.think_us,
                slo_us=args.slo_us,
                requests_per_user=max(1, n_requests // args.users),
                seed=args.seed + 2,
            )
        else:
            load = OpenLoopGenerator(
                queries,
                [RampStage(qps=qps, duration_us=n_requests / qps * 1e6)],
                slo_us=args.slo_us,
                seed=args.seed + 2,
            )
        simulator = ServingSimulator(
            batcher=ContinuousBatcher(
                batch_size=args.batch_size,
                window=args.window,
                dispatch_margin_us=args.margin_us,
            ),
            interactive_fallback=not args.no_interactive,
            cache=tier,
        )
        report = simulator.run(load, tables.vector)
        summary = report.summary()
        worst_attainment = min(worst_attainment, summary["slo_attainment"])
        row = [
            f"{qps / 1e6:.2f}M",
            int(summary["requests"]),
            f"{summary['mean_batch_size']:.1f}",
            int(summary["interactive_dispatches"]),
            f"{summary['p50_us']:.2f}",
            f"{summary['p99_us']:.2f}",
            f"{summary['slo_attainment']:.3f}",
            f"{summary['dedup_savings_fraction']:.3f}",
        ]
        if tier is not None:
            row.append(f"{summary['cache_hit_rate']:.3f}")
        table.add_row(row)
    mode = "closed-loop" if args.closed_loop else "open-loop (Poisson)"
    cache_note = f", cache {args.cache_kb} KB/rank" if tier is not None else ""
    print(
        f"serving sweep: {mode}, SLO {args.slo_us:.1f} µs, batch "
        f"{args.batch_size}, window {args.window}, seed {args.seed}"
        f"{cache_note}"
    )
    print(table.render())
    if args.min_attainment is not None and worst_attainment < args.min_attainment:
        print(
            f"FAIL: worst SLO attainment {worst_attainment:.3f} below floor "
            f"{args.min_attainment:.3f}"
        )
        return 1
    return 0


def _cmd_reduce(args: argparse.Namespace) -> int:
    """Cross-shard reduction sweep: schedules × shard counts, verified."""
    from repro.comm import SCHEDULES, LinkModel

    if args.quick:
        shard_counts = [2, 4]
        batches_n, batch_size, query_len = 2, 8, 8
        config = FafnirConfig(
            total_ranks=16, ranks_per_leaf_pe=2, batch_size=8, max_query_len=8
        )
    else:
        shard_counts = args.shards or [2, 4, 8, 16]
        batches_n, batch_size, query_len = 4, 32, 16
        config = FafnirConfig()
    link = LinkModel(
        latency_ns=args.link_latency_ns, bandwidth_gb_s=args.link_gb_s
    )
    tables = EmbeddingTableSet.random(seed=args.seed)
    generator = QueryGenerator.paper_calibrated(
        tables, seed=args.seed, query_len=query_len
    )
    stream = [generator.batch(batch_size) for _ in range(batches_n)]

    single = FafnirEngine(config=config, operator=args.operator)
    baseline = single.run_batches(stream, tables.vector)
    expected = [vector.tobytes() for vector in baseline.vectors]

    table = Table(
        [
            "shards",
            "schedule",
            "steps",
            "messages",
            "comm_bytes",
            "comm_cycles",
            "makespan_cycles",
            "identical",
        ]
    )
    failures = 0
    for shards in shard_counts:
        for name in sorted(SCHEDULES):
            runner = ShardedRunner(
                config=config,
                operator=args.operator,
                max_workers=1,
                reduction=name,
                num_shards=shards,
                link=link,
            )
            reduced = runner.run_reduced(stream, tables.vector)
            identical = [
                vector.tobytes() for vector in reduced.vectors
            ] == expected
            failures += 0 if identical else 1
            table.add_row(
                [
                    shards,
                    name,
                    reduced.total_steps,
                    reduced.total_messages,
                    reduced.total_comm_bytes,
                    reduced.comm_pe_cycles,
                    reduced.makespan_pe_cycles,
                    "yes" if identical else "NO",
                ]
            )
    total = len(stream) * len(stream[0])
    print(
        f"reduction sweep: {total} queries in {batches_n} batches, "
        f"operator {args.operator}, link {link.latency_ns:.0f} ns + "
        f"{link.bandwidth_gb_s:.0f} GB/s, seed {args.seed}"
    )
    print(table.render())
    if failures:
        print(f"FAIL: {failures} cells diverged from the single-node engine")
        return 1
    print("all cells byte-identical to the single-node engine")
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    """Chaos sweep through the end-to-end resilience stack.

    Reduction side: link loss, a straggler shard (hedged vs unhedged),
    and a dead shard (route-around vs fail-fast) on the cross-shard
    reduction.  Serving side: an overload burst at ~2× capacity with and
    without admission control.  ``--check`` turns the invariants into a
    non-zero exit code for CI.
    """
    import json

    from repro.comm import LinkModel
    from repro.resilience import HedgePolicy, OverloadPolicy
    from repro.serving import (
        ContinuousBatcher,
        OpenLoopGenerator,
        RampStage,
        ServingSimulator,
    )

    seed = args.seed
    if args.quick:
        shards, batches_n, batch_size, query_len = 4, 2, 8, 8
        config = FafnirConfig(
            total_ranks=16, ranks_per_leaf_pe=2, batch_size=8, max_query_len=8
        )
        n_requests = 60
    else:
        shards, batches_n, batch_size, query_len = 4, 4, 32, 16
        config = FafnirConfig()
        n_requests = 200
    tables = EmbeddingTableSet.random(seed=seed)
    generator = QueryGenerator.paper_calibrated(
        tables, seed=seed, query_len=query_len
    )
    stream = [generator.batch(batch_size) for _ in range(batches_n)]
    link = LinkModel(latency_ns=300.0, bandwidth_gb_s=20.0)
    failures: List[str] = []

    def check(condition: bool, label: str) -> None:
        if not condition:
            failures.append(label)

    def runner(**kwargs) -> ShardedRunner:
        return ShardedRunner(
            config=config,
            max_workers=1,
            reduction="gather",
            num_shards=shards,
            link=link,
            **kwargs,
        )

    table = Table(
        ["scenario", "outcome", "comm_cycles", "makespan", "identical"]
    )
    clean = runner().run_reduced(stream, tables.vector)
    clean_bytes = [vector.tobytes() for vector in clean.vectors]
    table.add_row(
        ["clean", "ok", clean.comm_pe_cycles, clean.makespan_pe_cycles, "-"]
    )

    # Installed-but-idle protection must not perturb a single byte.
    idle = runner(
        faults=FaultPlan(seed=seed),
        fault_policy=FaultPolicy.graceful(),
        hedge=HedgePolicy(),
    ).run_reduced(stream, tables.vector)
    idle_identical = [v.tobytes() for v in idle.vectors] == clean_bytes
    check(idle_identical, "idle protection not byte-identical")
    table.add_row(
        [
            "idle protection",
            "ok",
            idle.comm_pe_cycles,
            idle.makespan_pe_cycles,
            "yes" if idle_identical else "NO",
        ]
    )

    # Link loss: retransmissions inflate comm cycles, never change bytes.
    # The reference cell samples at the configured (low) rate; the stress
    # cell drops half of all messages so the inflation invariant always
    # has drops to bite on (a handful of messages at 1% may sample none).
    def lossy_run(probability: float):
        plan = FaultPlan(seed=seed, link_loss_probability=probability)
        result = runner(
            faults=plan, fault_policy=FaultPolicy.graceful()
        ).run_reduced(stream, tables.vector)
        identical = [v.tobytes() for v in result.vectors] == clean_bytes
        drops = recovery_report(result.events).injected.get("link_loss", 0)
        check(
            identical, f"link loss {probability:.0%} changed reduced bytes"
        )
        table.add_row(
            [
                f"link loss {probability:.0%}",
                f"{drops} drops",
                result.comm_pe_cycles,
                result.makespan_pe_cycles,
                "yes" if identical else "NO",
            ]
        )
        return result, drops

    lossy, _ = lossy_run(args.link_loss)
    stressed, stress_drops = lossy_run(0.5)
    check(stress_drops > 0, "50% link loss sampled no drops")
    check(
        stressed.comm_pe_cycles > clean.comm_pe_cycles,
        "link loss did not inflate comm cycles",
    )

    # One straggler shard, unhedged vs hedged: first-result-wins should
    # pull the makespan back toward clean.
    active = clean.active_pieces
    straggler_piece = active[len(active) // 2]
    straggler_plan = FaultPlan(
        seed=seed,
        straggler_multipliers={straggler_piece: args.straggler_factor},
    )
    unhedged = runner(
        faults=straggler_plan, fault_policy=FaultPolicy.graceful()
    ).run_reduced(stream, tables.vector)
    hedged = runner(
        faults=straggler_plan,
        fault_policy=FaultPolicy.graceful(),
        hedge=HedgePolicy(),
    ).run_reduced(stream, tables.vector)
    hedged_identical = [v.tobytes() for v in hedged.vectors] == clean_bytes
    check(hedged_identical, "hedging changed reduced bytes")
    check(
        hedged.makespan_pe_cycles <= unhedged.makespan_pe_cycles,
        "hedged makespan above unhedged",
    )
    check(hedged.hedges.wins >= 1, "hedging never won a race")
    table.add_row(
        [
            f"straggler ×{args.straggler_factor:.0f}",
            "unhedged",
            unhedged.comm_pe_cycles,
            unhedged.makespan_pe_cycles,
            "yes",
        ]
    )
    table.add_row(
        [
            f"straggler ×{args.straggler_factor:.0f}",
            f"hedged ({hedged.hedges.wins} wins, "
            f"{hedged.hedges.saved_cycles} cyc saved)",
            hedged.comm_pe_cycles,
            hedged.makespan_pe_cycles,
            "yes" if hedged_identical else "NO",
        ]
    )

    # Dead shard: graceful routes around it (untouched queries stay
    # bit-identical), fail-fast refuses to serve partial answers.
    dead_piece = active[0]
    dead_plan = FaultPlan(seed=seed, dead_shards=frozenset({dead_piece}))
    routed = runner(
        faults=dead_plan, fault_policy=FaultPolicy.graceful()
    ).run_reduced(stream, tables.vector)
    statuses = routed.statuses
    flat_queries = [query for batch in stream for query in batch]
    untouched_identical = True
    touched = 0
    for position, query in enumerate(flat_queries):
        hits_dead = any(
            routed.partition.owner(index) == dead_piece for index in query
        )
        if hits_dead:
            touched += 1
            untouched_identical &= statuses[position] != "ok"
        else:
            untouched_identical &= (
                routed.vectors[position].tobytes() == clean_bytes[position]
            )
    check(untouched_identical, "dead-shard route-around broke untouched queries")
    check(touched > 0, "dead shard touched no queries (pick a hotter piece)")
    try:
        runner(faults=dead_plan, fault_policy=FaultPolicy()).run_reduced(
            stream, tables.vector
        )
        fail_fast_raised = False
    except Exception:
        fail_fast_raised = True
    check(fail_fast_raised, "fail-fast served answers from a dead shard")
    table.add_row(
        [
            f"dead shard (piece {dead_piece})",
            f"{touched} queries degraded, fail-fast "
            + ("raises" if fail_fast_raised else "DID NOT RAISE"),
            routed.comm_pe_cycles,
            routed.makespan_pe_cycles,
            "yes" if untouched_identical else "NO",
        ]
    )

    print(
        f"reduction resilience: {len(flat_queries)} queries, {shards} shards, "
        f"seed {seed}"
    )
    print(table.render())
    print()

    # ---- serving overload ------------------------------------------------
    def serve_run(qps: float, count: int, protect: bool) -> "ServingReport":
        load = OpenLoopGenerator(
            QueryGenerator.paper_calibrated(
                tables, seed=seed + 1, query_len=query_len
            ),
            [RampStage(qps=qps, duration_us=count / qps * 1e6)],
            slo_us=args.slo_us,
            seed=seed + 2,
        )
        simulator = ServingSimulator(
            batcher=ContinuousBatcher(batch_size=16, window=64),
            overload=OverloadPolicy() if protect else None,
        )
        return simulator.run(load, tables.vector)

    # Probe capacity: swamp the server and read back the drain rate.
    probe = serve_run(1e9, n_requests, protect=False)
    capacity_qps = probe.observed_qps
    # The burst must outlast the SLO budget's worth of backlog, or the
    # queue drains before anyone can miss.
    burst_n = max(n_requests, int(capacity_qps * args.slo_us * 3 / 1e6))
    base = serve_run(0.5 * capacity_qps, n_requests, protect=False)
    burst = serve_run(args.burst_factor * capacity_qps, burst_n, protect=False)
    shed = serve_run(args.burst_factor * capacity_qps, burst_n, protect=True)
    admitted = [r for r in shed.records if r.status != "shed"]
    admitted_ok = sum(1 for r in admitted if r.slo_met) / max(len(admitted), 1)
    burst_ok = sum(1 for r in burst.records if r.slo_met) / max(
        len(burst.records), 1
    )
    check(
        admitted_ok >= burst_ok,
        "shedding did not improve the admitted stream's attainment",
    )
    check(
        shed.latency_percentile_us(99) <= burst.latency_percentile_us(99),
        "shedding did not improve served p99",
    )
    serving_table = Table(
        ["scenario", "offered_qps", "attainment", "p99_us", "shed"]
    )
    for label, report in (
        (f"base ({0.5:.1f}× capacity)", base),
        (f"burst ({args.burst_factor:.1f}× capacity)", burst),
        (f"burst + shedding", shed),
    ):
        serving_table.add_row(
            [
                label,
                f"{report.observed_qps / 1e6:.2f}M",
                f"{report.slo_attainment:.3f}",
                f"{report.latency_percentile_us(99):.2f}",
                f"{report.shed_fraction:.3f}",
            ]
        )
    print(
        f"serving overload: capacity ≈ {capacity_qps / 1e6:.2f}M qps, "
        f"SLO {args.slo_us:.1f} µs, admitted stream on-SLO "
        f"{admitted_ok:.3f} vs {burst_ok:.3f} unprotected"
    )
    print(serving_table.render())

    if args.min_attainment is not None:
        check(
            admitted_ok >= args.min_attainment,
            f"admitted attainment {admitted_ok:.3f} below floor "
            f"{args.min_attainment:.3f}",
        )

    if args.out:
        payload = {
            "seed": seed,
            "clean_comm_cycles": clean.comm_pe_cycles,
            "lossy_comm_cycles": lossy.comm_pe_cycles,
            "unhedged_makespan": unhedged.makespan_pe_cycles,
            "hedged_makespan": hedged.makespan_pe_cycles,
            "hedge_wins": hedged.hedges.wins,
            "capacity_qps": capacity_qps,
            "burst_attainment": burst.slo_attainment,
            "shed_attainment": shed.slo_attainment,
            "admitted_attainment": admitted_ok,
            "shed_fraction": shed.shed_fraction,
            "failures": failures,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"summary written to {args.out}")

    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1 if args.check else 0
    print("all resilience invariants held")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Hot-index tier sweep: hit rate and p99 vs cache size and Zipf α.

    Every cached cell is compared byte-for-byte against the dedup-only
    baseline it shares a stream with — the tier is a timing mechanism and
    any functional divergence fails the sweep.  ``--check`` runs the CI
    smoke assertions instead: a skewed stream must hit, a uniform stream
    of never-repeating ids must not.
    """
    from repro.tiering import HotTierConfig

    if args.quick:
        batches_n, batch_size, query_len = 3, 8, 8
        config = FafnirConfig(
            total_ranks=8, ranks_per_leaf_pe=2, batch_size=8, max_query_len=8
        )
        sizes_kb = args.sizes_kb or [8, 32]
        alphas = args.alphas or [1.05]
        hot_rows = 512
    else:
        batches_n, batch_size, query_len = 6, 32, 16
        config = FafnirConfig()
        sizes_kb = args.sizes_kb or [16, 64, 128, 256]
        alphas = args.alphas or [0.8, 1.05, 1.65]
        hot_rows = 4096
    tables = EmbeddingTableSet.random(seed=args.seed)

    def run_stream(alpha: float, tier) -> dict:
        generator = QueryGenerator(
            tables,
            query_len=query_len,
            skew=alpha,
            hot_rows=hot_rows,
            seed=args.seed,
        )
        stream = [generator.batch(batch_size) for _ in range(batches_n)]
        engine = FafnirEngine(config=config, cache=tier)
        result = engine.run_batches(stream, tables.vector, deduplicate=True)
        cycles = sorted(
            cycle for item in result.results for cycle in item.ready_pe_cycles
        )
        stats = engine.memory.cache_stats
        return {
            "bytes": tuple(vector.tobytes() for vector in result.vectors),
            "reads": result.memory_stats.reads,
            "hit_rate": stats.hit_rate,
            "hits": stats.hits,
            "p99": cycles[min(len(cycles) - 1, int(len(cycles) * 0.99))],
        }

    if args.check:
        tier = HotTierConfig(
            size_bytes=128 * 1024, line_bytes=config.vector_bytes
        )
        skewed = run_stream(1.05, tier)
        # Uniform control: sequential never-repeating ids cannot hit a
        # demand-filled cache (dedup removes within-batch repeats anyway).
        unique = iter(range(10**9))
        batches = [
            [[next(unique) for _ in range(query_len)] for _ in range(batch_size)]
            for _ in range(batches_n)
        ]
        engine = FafnirEngine(config=config, cache=tier)
        engine.run_batches(batches, make_unique_source(config), deduplicate=True)
        uniform = engine.memory.cache_stats
        print(
            f"check: zipf hit rate {skewed['hit_rate']:.3f}, "
            f"uniform hit rate {uniform.hit_rate:.3f}"
        )
        if skewed["hit_rate"] <= 0.0:
            print("FAIL: Zipf(1.05) stream produced no cache hits")
            return 1
        if uniform.hit_rate != 0.0:
            print("FAIL: uniform-unique stream produced cache hits")
            return 1
        print("cache smoke passed")
        return 0

    table = Table(
        [
            "alpha",
            "cache_kb",
            "hit_rate",
            "dram_reads",
            "read_drop",
            "p99_cycles",
            "identical",
        ]
    )
    failures = 0
    for alpha in alphas:
        baseline = run_stream(alpha, None)
        table.add_row(
            [
                f"{alpha:.2f}",
                "dedup-only",
                "—",
                baseline["reads"],
                "—",
                baseline["p99"],
                "—",
            ]
        )
        for kb in sizes_kb:
            tier = HotTierConfig(
                size_bytes=kb * 1024,
                line_bytes=config.vector_bytes,
                policy=args.policy,
            )
            cached = run_stream(alpha, tier)
            identical = cached["bytes"] == baseline["bytes"]
            failures += 0 if identical else 1
            drop = (
                1.0 - cached["reads"] / baseline["reads"]
                if baseline["reads"]
                else 0.0
            )
            table.add_row(
                [
                    f"{alpha:.2f}",
                    kb,
                    f"{cached['hit_rate']:.3f}",
                    cached["reads"],
                    f"{drop:.1%}",
                    cached["p99"],
                    "yes" if identical else "NO",
                ]
            )
    total = batches_n * batch_size
    print(
        f"hot-index tier sweep: {total} queries × {query_len} lookups per "
        f"cell, {config.total_ranks} ranks, line "
        f"{config.vector_bytes} B, policy {args.policy}, seed {args.seed}"
    )
    print(table.render())
    if failures:
        print(f"FAIL: {failures} cached cells diverged from dedup-only")
        return 1
    print("all cached cells byte-identical to the dedup-only baseline")
    return 0


class make_unique_source:
    """Deterministic vector source for arbitrarily large unique-id streams."""

    def __init__(self, config: FafnirConfig):
        self.elements = config.vector_elements

    def __call__(self, index: int) -> np.ndarray:
        return np.random.default_rng(index).standard_normal(self.elements)


def _cmd_validate(args: argparse.Namespace) -> int:
    checks = validate_anchors()
    failures = 0
    for check in checks:
        print(check)
        if not check.ok:
            failures += 1
    print(f"\n{len(checks) - failures}/{len(checks)} anchors hold")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FAFNIR reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lookup = subparsers.add_parser("lookup", help="run one batch on one engine")
    lookup.add_argument("--engine", choices=sorted(ENGINES), default="fafnir")
    lookup.add_argument("--batch-size", type=int, default=32)
    lookup.add_argument("--query-len", type=int, default=16)
    lookup.add_argument("--seed", type=int, default=0)
    lookup.set_defaults(func=_cmd_lookup)

    compare = subparsers.add_parser("compare", help="compare all engines")
    compare.add_argument("--batch-size", type=int, default=32)
    compare.add_argument("--query-len", type=int, default=16)
    compare.add_argument("--seed", type=int, default=0)
    compare.set_defaults(func=_cmd_compare)

    spmv = subparsers.add_parser("spmv", help="SpMV: FAFNIR vs Two-Step")
    spmv.add_argument("--kind", choices=("stencil", "graph"), default="stencil")
    spmv.add_argument("--size", type=int, default=64)
    spmv.add_argument("--seed", type=int, default=0)
    spmv.set_defaults(func=_cmd_spmv)

    rank = subparsers.add_parser("pagerank", help="PageRank on FAFNIR SpMV")
    rank.add_argument("--scale", type=int, default=10)
    rank.add_argument("--seed", type=int, default=0)
    rank.add_argument("--tolerance", type=float, default=1e-8)
    rank.add_argument("--top", type=int, default=5)
    rank.set_defaults(func=_cmd_pagerank)

    hw = subparsers.add_parser("hw", help="hardware bookkeeping tables")
    hw.add_argument("--batch-size", type=int, default=32)
    hw.set_defaults(func=_cmd_hw)

    trace = subparsers.add_parser(
        "trace", help="capture a cycle-level event trace of one batch"
    )
    trace.add_argument("--batch-size", type=int, default=32)
    trace.add_argument("--query-len", type=int, default=16)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--kernel", choices=("scalar", "vector"), default="vector"
    )
    trace.add_argument(
        "--out", default="fafnir_trace.json", help="Chrome trace JSON path"
    )
    trace.add_argument(
        "--jsonl", default=None, help="also write a compact JSONL event log"
    )
    trace.add_argument(
        "--no-dedup",
        dest="dedup",
        action="store_false",
        help="trace the no-deduplication ablation instead",
    )
    trace.set_defaults(func=_cmd_trace)

    chaos = subparsers.add_parser(
        "chaos", help="seeded fault-injection sweep with recovery report"
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    chaos.add_argument(
        "--shard-timeout",
        type=float,
        default=60.0,
        help="wall-clock seconds before a shard worker is declared hung",
    )
    chaos.add_argument(
        "--out", default=None, help="optional Chrome trace JSON of the chaos run"
    )
    chaos.set_defaults(func=_cmd_chaos)

    serve = subparsers.add_parser(
        "serve", help="online serving sweep under a latency SLO"
    )
    serve.add_argument(
        "--qps",
        type=float,
        nargs="+",
        default=None,
        help="offered QPS levels to sweep (default: 0.5M 2M 6M 12M)",
    )
    serve.add_argument("--requests", type=int, default=400, help="requests per level")
    serve.add_argument("--query-len", type=int, default=16)
    serve.add_argument("--batch-size", type=int, default=16)
    serve.add_argument(
        "--window", type=int, default=64, help="sharing-aware reorder window"
    )
    serve.add_argument("--slo-us", type=float, default=25.0, help="latency SLO (µs)")
    serve.add_argument(
        "--margin-us",
        type=float,
        default=3.0,
        help="dispatch a partial batch this many µs before the oldest deadline",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--closed-loop",
        action="store_true",
        help="fixed user population with think time instead of Poisson arrivals",
    )
    serve.add_argument("--users", type=int, default=32, help="closed-loop users")
    serve.add_argument(
        "--think-us", type=float, default=4.0, help="closed-loop think time (µs)"
    )
    serve.add_argument(
        "--no-interactive",
        action="store_true",
        help="disable the low-load single-query fallback path",
    )
    serve.add_argument(
        "--min-attainment",
        type=float,
        default=None,
        help="exit nonzero if worst SLO attainment falls below this floor",
    )
    serve.add_argument(
        "--cache-kb",
        type=int,
        default=None,
        help="enable the hot-index tier with this many KB per rank",
    )
    serve.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    serve.set_defaults(func=_cmd_serve)

    reduce = subparsers.add_parser(
        "reduce", help="cross-shard reduction schedule sweep"
    )
    reduce.add_argument("--seed", type=int, default=0)
    reduce.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=None,
        help="shard counts to sweep (default: 2 4 8 16)",
    )
    reduce.add_argument(
        "--operator", choices=("sum", "mean", "min", "max"), default="sum"
    )
    reduce.add_argument(
        "--link-latency-ns",
        type=float,
        default=500.0,
        help="inter-node link latency per message (ns)",
    )
    reduce.add_argument(
        "--link-gb-s",
        type=float,
        default=25.0,
        help="inter-node link bandwidth (GB/s)",
    )
    reduce.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    reduce.set_defaults(func=_cmd_reduce)

    resilience = subparsers.add_parser(
        "resilience",
        help="chaos sweep: link faults, stragglers, dead shards, overload",
    )
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--link-loss",
        type=float,
        default=0.01,
        help="per-message loss probability on the cross-shard links",
    )
    resilience.add_argument(
        "--straggler-factor",
        type=float,
        default=4.0,
        help="slowdown multiplier of the straggling shard",
    )
    resilience.add_argument(
        "--burst-factor",
        type=float,
        default=2.0,
        help="overload burst as a multiple of measured serving capacity",
    )
    resilience.add_argument("--slo-us", type=float, default=25.0)
    resilience.add_argument(
        "--min-attainment",
        type=float,
        default=None,
        help="floor on the admitted stream's SLO attainment under burst",
    )
    resilience.add_argument(
        "--out", default=None, help="write a JSON summary to this path"
    )
    resilience.add_argument(
        "--check",
        action="store_true",
        help="CI smoke: exit non-zero when any resilience invariant fails",
    )
    resilience.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    resilience.set_defaults(func=_cmd_resilience)

    cache = subparsers.add_parser(
        "cache", help="hot-index tier sweep: hit rate & p99 vs size and skew"
    )
    cache.add_argument("--seed", type=int, default=0)
    cache.add_argument(
        "--sizes-kb",
        type=int,
        nargs="+",
        default=None,
        help="per-rank cache sizes to sweep in KB (default: 16 64 128 256)",
    )
    cache.add_argument(
        "--alphas",
        type=float,
        nargs="+",
        default=None,
        help="Zipf skews to sweep (default: 0.8 1.05 1.65)",
    )
    cache.add_argument(
        "--policy", choices=("lru", "fifo"), default="lru"
    )
    cache.add_argument(
        "--check",
        action="store_true",
        help="CI smoke: assert hits under Zipf, zero hits under uniform-unique",
    )
    cache.add_argument(
        "--quick",
        action="store_true",
        help="small configuration for CI smoke runs",
    )
    cache.set_defaults(func=_cmd_cache)

    validate = subparsers.add_parser(
        "validate", help="check the paper's numeric anchors"
    )
    validate.set_defaults(func=_cmd_validate)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate paper figures/tables"
    )
    experiments.add_argument("--list", action="store_true", help="list experiments")
    experiments.add_argument(
        "--run", nargs="*", metavar="ID", help="experiment ids to run (e.g. fig13)"
    )
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
