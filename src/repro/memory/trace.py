"""Access accounting: row-buffer behaviour, bandwidth, and energy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.memory.config import MemoryConfig
from repro.memory.request import Completion


@dataclass
class AccessStats:
    """Aggregate statistics over a set of completions."""

    reads: int = 0
    bursts: int = 0
    bytes_read: int = 0
    row_hits: int = 0
    row_misses: int = 0
    activates: int = 0
    finish_cycle: int = 0
    per_rank_reads: Dict[int, int] = field(default_factory=dict)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def ranks_touched(self) -> int:
        return len(self.per_rank_reads)

    def energy_pj(self, config: MemoryConfig) -> float:
        """Dynamic DRAM energy of the recorded accesses."""
        return config.energy.access_energy_pj(self.bursts, self.activates)

    @staticmethod
    def from_completions(completions: Iterable[Completion]) -> "AccessStats":
        stats = AccessStats()
        for completion in completions:
            stats.reads += 1
            stats.bursts += completion.bursts
            stats.bytes_read += completion.request.bytes_
            if completion.row_hit:
                stats.row_hits += 1
            else:
                stats.row_misses += 1
            if completion.activated:
                stats.activates += 1
            stats.finish_cycle = max(stats.finish_cycle, completion.finish_cycle)
            rank = completion.request.rank
            stats.per_rank_reads[rank] = stats.per_rank_reads.get(rank, 0) + 1
        return stats

    def merged_with(self, other: "AccessStats") -> "AccessStats":
        merged = AccessStats(
            reads=self.reads + other.reads,
            bursts=self.bursts + other.bursts,
            bytes_read=self.bytes_read + other.bytes_read,
            row_hits=self.row_hits + other.row_hits,
            row_misses=self.row_misses + other.row_misses,
            activates=self.activates + other.activates,
            finish_cycle=max(self.finish_cycle, other.finish_cycle),
            per_rank_reads=dict(self.per_rank_reads),
        )
        for rank, count in other.per_rank_reads.items():
            merged.per_rank_reads[rank] = merged.per_rank_reads.get(rank, 0) + count
        return merged


@dataclass
class AccessTrace:
    """Ordered record of completions, convertible to :class:`AccessStats`."""

    completions: List[Completion] = field(default_factory=list)

    def record(self, completion: Completion) -> None:
        self.completions.append(completion)

    def extend(self, completions: Iterable[Completion]) -> None:
        self.completions.extend(completions)

    def stats(self) -> AccessStats:
        return AccessStats.from_completions(self.completions)

    def __len__(self) -> int:
        return len(self.completions)
