"""Vector-to-DRAM placement policies.

The paper's three contenders differ in *how embedding vectors are laid out*:

* RecNMP and FAFNIR keep each vector contiguous inside a single rank
  (**row-major**) so a 512 B vector read is one activate + eight bursts with
  full row-buffer benefit, and distinct vectors read in rank-parallel.
* TensorDIMM stripes every vector across **all** ranks (**column-major**) so
  each rank contributes a thin slice of every vector; reading a vector opens
  a row in every rank for only a few bytes, "fundamentally breaking
  row-buffer locality" (paper §III-B).

Both policies are expressed as splitting a vector id into row-aligned
:class:`~repro.memory.request.ReadRequest` pieces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.memory.config import MemoryGeometry
from repro.memory.request import ReadRequest


class VectorPlacement(Protocol):
    """Maps vector ids to the DRAM reads that fetch them."""

    vector_bytes: int

    def requests_for(
        self, vector_id: int, issue_cycle: int = 0
    ) -> List[ReadRequest]:
        """All row-aligned reads needed to fetch one vector."""
        ...

    def home_rank(self, vector_id: int) -> Optional[int]:
        """The single rank holding the vector, or ``None`` if striped."""
        ...


def _locate_slot(
    geometry: MemoryGeometry, slot: int, slot_bytes: int
) -> tuple[int, int, int]:
    """Place the ``slot``-th fixed-size record within one rank.

    Returns (bank, row, column).  Records are packed row-major: consecutive
    slots fill a row, then move to the next bank (spreading activates), then
    to the next row.
    """
    if slot_bytes > geometry.row_bytes:
        raise ValueError("record larger than a DRAM row")
    slots_per_row = geometry.row_bytes // slot_bytes
    row_index, within_row = divmod(slot, slots_per_row)
    bank = row_index % geometry.banks_per_rank
    row = row_index // geometry.banks_per_rank
    column = within_row * slot_bytes
    return bank, row, column


@dataclass(frozen=True)
class RowMajorPlacement:
    """Whole vectors in single ranks, round-robin across ranks (Fig. 4b).

    This is the layout RecNMP and FAFNIR assume: vector ``i`` lives entirely
    in rank ``i mod R``, so distinct vectors are fetched in rank-parallel and
    each fetch enjoys row-buffer locality.
    """

    geometry: MemoryGeometry
    vector_bytes: int

    def __post_init__(self) -> None:
        if self.vector_bytes <= 0:
            raise ValueError("vector_bytes must be positive")
        if self.vector_bytes > self.geometry.row_bytes:
            raise ValueError("vector larger than a DRAM row")

    def home_rank(self, vector_id: int) -> Optional[int]:
        if vector_id < 0:
            raise ValueError("vector_id must be non-negative")
        return vector_id % self.geometry.total_ranks

    def requests_for(
        self, vector_id: int, issue_cycle: int = 0
    ) -> List[ReadRequest]:
        rank = self.home_rank(vector_id)
        assert rank is not None
        slot = vector_id // self.geometry.total_ranks
        bank, row, column = _locate_slot(self.geometry, slot, self.vector_bytes)
        return [
            ReadRequest(
                rank=rank,
                bank=bank,
                row=row,
                column=column,
                bytes_=self.vector_bytes,
                issue_cycle=issue_cycle,
                tag=vector_id,
            )
        ]


@dataclass(frozen=True)
class ColumnMajorPlacement:
    """TensorDIMM's layout: every vector striped across all ranks.

    Each rank stores ``vector_bytes / R`` of every vector.  A vector read
    touches all ranks; each touch is small, so the per-access activate cost
    dominates and row-buffer utilisation collapses for random indices.
    """

    geometry: MemoryGeometry
    vector_bytes: int

    def __post_init__(self) -> None:
        if self.vector_bytes <= 0:
            raise ValueError("vector_bytes must be positive")
        if self.vector_bytes % self.geometry.total_ranks != 0:
            raise ValueError(
                "vector_bytes must divide evenly across all ranks "
                f"({self.vector_bytes} B over {self.geometry.total_ranks} ranks)"
            )

    @property
    def slice_bytes(self) -> int:
        return self.vector_bytes // self.geometry.total_ranks

    def home_rank(self, vector_id: int) -> Optional[int]:
        return None  # striped: no single home

    def requests_for(
        self, vector_id: int, issue_cycle: int = 0
    ) -> List[ReadRequest]:
        if vector_id < 0:
            raise ValueError("vector_id must be non-negative")
        slice_bytes = self.slice_bytes
        bank, row, column = _locate_slot(self.geometry, vector_id, slice_bytes)
        return [
            ReadRequest(
                rank=rank,
                bank=bank,
                row=row,
                column=column,
                bytes_=slice_bytes,
                issue_cycle=issue_cycle,
                tag=vector_id,
            )
            for rank in range(self.geometry.total_ranks)
        ]


@dataclass(frozen=True)
class StreamPlacement:
    """Sequential streaming layout used for SpMV operands (paper §IV-B).

    A stream of ``total_bytes`` starting at logical offset 0 inside one rank
    is split into row-sized reads — the "specify initial address and size"
    access type the host issues for SpMV.
    """

    geometry: MemoryGeometry
    rank: int

    def __post_init__(self) -> None:
        if not 0 <= self.rank < self.geometry.total_ranks:
            raise ValueError(f"rank {self.rank} out of range")

    def requests_for_stream(
        self, start_byte: int, total_bytes: int, issue_cycle: int = 0
    ) -> List[ReadRequest]:
        """Row-aligned reads covering [start_byte, start_byte + total_bytes)."""
        if start_byte < 0 or total_bytes <= 0:
            raise ValueError("invalid stream extent")
        geometry = self.geometry
        requests: List[ReadRequest] = []
        offset = start_byte
        remaining = total_bytes
        while remaining > 0:
            row_index, column = divmod(offset, geometry.row_bytes)
            chunk = min(remaining, geometry.row_bytes - column)
            bank = row_index % geometry.banks_per_rank
            row = row_index // geometry.banks_per_rank
            requests.append(
                ReadRequest(
                    rank=self.rank,
                    bank=bank,
                    row=row,
                    column=column,
                    bytes_=chunk,
                    issue_cycle=issue_cycle,
                    tag=("stream", self.rank, offset),
                )
            )
            offset += chunk
            remaining -= chunk
        return requests
