"""Read-request and completion records exchanged with the memory simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReadRequest:
    """A read of ``bytes_`` contiguous bytes starting in one DRAM row.

    Requests never span rows; :mod:`repro.memory.mapping` splits vector reads
    into row-aligned pieces before they reach the controller.

    Attributes:
        rank:   global rank id (see :class:`repro.memory.config.MemoryGeometry`).
        bank:   bank index within the rank.
        row:    row index within the bank.
        column: starting byte offset within the row.
        bytes_: number of bytes to read (> 0, fits within the row).
        issue_cycle: earliest cycle the controller may service the request.
        tag:    opaque caller identifier (e.g. embedding-vector index).
    """

    rank: int
    bank: int
    row: int
    column: int
    bytes_: int
    issue_cycle: int = 0
    tag: object = None

    @property
    def is_write(self) -> bool:
        return False

    def __post_init__(self) -> None:
        if self.bytes_ <= 0:
            raise ValueError("bytes_ must be positive")
        if self.rank < 0 or self.bank < 0 or self.row < 0 or self.column < 0:
            raise ValueError("rank/bank/row/column must be non-negative")
        if self.issue_cycle < 0:
            raise ValueError("issue_cycle must be non-negative")


@dataclass(frozen=True)
class WriteRequest(ReadRequest):
    """A write of ``bytes_`` contiguous bytes into one DRAM row.

    Shares the read request's row-aligned contract; the controller models
    the write data burst occupying the bus and the bank's write-recovery
    time before its next command.
    """

    @property
    def is_write(self) -> bool:
        return True


@dataclass(frozen=True)
class Completion:
    """Outcome of servicing one :class:`ReadRequest`.

    Attributes:
        request: the serviced request.
        start_cycle: cycle the first command for this request issued.
        finish_cycle: cycle the last data beat arrived.
        row_hit: whether the access hit the open row buffer.
        bursts: number of 64 B bus bursts the read consumed.
        activated: whether an ACT command was required.
    """

    request: ReadRequest
    start_cycle: int
    finish_cycle: int
    row_hit: bool
    bursts: int
    activated: bool

    @property
    def latency(self) -> int:
        return self.finish_cycle - self.request.issue_cycle

    def __post_init__(self) -> None:
        if self.finish_cycle < self.start_cycle:
            raise ValueError("finish_cycle precedes start_cycle")
