"""Memory-system configuration: geometry and DRAM timing.

The FAFNIR paper evaluates a DDR4 memory system of four channels, each with
four DIMMs of two ranks (32 ranks total).  This module describes such a
system for the cycle-approximate simulator in :mod:`repro.memory.system`.

All timing values are expressed in *memory-controller cycles*.  The default
preset approximates DDR4-2400 (1200 MHz bus clock); absolute fidelity is not
the goal — the relative cost of row hits, row misses, and bus transfers is
what drives every comparison in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property


@dataclass(frozen=True)
class DramTiming:
    """DRAM timing parameters in controller cycles.

    Attributes:
        tRCD: ACT-to-READ delay (row activate).
        tRP:  PRE-to-ACT delay (precharge).
        tCAS: READ-to-data delay (column access, a.k.a. CL).
        tRAS: minimum ACT-to-PRE interval.
        tCCD: minimum spacing between column commands to the same bank group.
        tBL:  data-bus cycles occupied by one burst (BL8 on a x64 DIMM moves
              64 bytes in 4 bus clocks at DDR).
        tRTRS: rank-to-rank switching penalty on a shared channel bus.
        tCWL: WRITE-to-data delay (CAS write latency).
        tWR: write recovery before the bank accepts a precharge.
        tREFI: average refresh-command interval (7.8 µs at 1200 MHz).
        tRFC: refresh cycle time — the rank is unavailable this long.
        refresh_enabled: model periodic refresh blackouts (off by default;
            the calibrated evaluation runs are far shorter than tREFI, so
            refresh mainly matters for long streaming workloads).
    """

    tRCD: int = 16
    tRP: int = 16
    tCAS: int = 16
    tRAS: int = 39
    tCCD: int = 4
    tBL: int = 4
    tRTRS: int = 2
    tCWL: int = 14
    tWR: int = 18
    tREFI: int = 9360
    tRFC: int = 420
    refresh_enabled: bool = False

    @property
    def row_miss_penalty(self) -> int:
        """Extra cycles a row-buffer conflict costs over a row hit."""
        return self.tRP + self.tRCD

    @property
    def row_closed_penalty(self) -> int:
        """Extra cycles an access to a closed (precharged) row costs."""
        return self.tRCD


@dataclass(frozen=True)
class MemoryGeometry:
    """Physical organisation of the memory system.

    The FAFNIR target is ``channels=4, dimms_per_channel=4, ranks_per_dimm=2``
    for 32 ranks total (paper Fig. 4a).
    """

    channels: int = 4
    dimms_per_channel: int = 4
    ranks_per_dimm: int = 2
    banks_per_rank: int = 16
    row_bytes: int = 8192
    burst_bytes: int = 64

    # cached_property (not property): these are read once per memory request
    # on the simulator's hot path.  Writing the cache into ``__dict__``
    # bypasses the frozen-dataclass ``__setattr__``, and field-based
    # equality/hashing is unaffected.
    @cached_property
    def ranks_per_channel(self) -> int:
        return self.dimms_per_channel * self.ranks_per_dimm

    @cached_property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @cached_property
    def total_banks(self) -> int:
        return self.total_ranks * self.banks_per_rank

    def rank_of(self, channel: int, dimm: int, rank_in_dimm: int) -> int:
        """Flatten (channel, dimm, rank-in-dimm) into a global rank id."""
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= dimm < self.dimms_per_channel:
            raise ValueError(f"dimm {dimm} out of range")
        if not 0 <= rank_in_dimm < self.ranks_per_dimm:
            raise ValueError(f"rank {rank_in_dimm} out of range")
        return (
            channel * self.ranks_per_channel
            + dimm * self.ranks_per_dimm
            + rank_in_dimm
        )

    def locate(self, global_rank: int) -> tuple[int, int, int]:
        """Inverse of :meth:`rank_of`: global rank id → (channel, dimm, rank)."""
        if not 0 <= global_rank < self.total_ranks:
            raise ValueError(f"rank {global_rank} out of range")
        channel, rest = divmod(global_rank, self.ranks_per_channel)
        dimm, rank_in_dimm = divmod(rest, self.ranks_per_dimm)
        return channel, dimm, rank_in_dimm

    def channel_of(self, global_rank: int) -> int:
        return self.locate(global_rank)[0]

    def dimm_of(self, global_rank: int) -> tuple[int, int]:
        """Global rank id → (channel, dimm) pair identifying its DIMM."""
        channel, dimm, _ = self.locate(global_rank)
        return channel, dimm


@dataclass(frozen=True)
class DramEnergy:
    """First-order DRAM energy constants (picojoules).

    Used for the memory-energy-saving analysis (paper Fig. 15 and §VI).
    Values are representative of DDR4 at 1.2 V; the *ratios* between
    activation and burst-read energy are what matter for the savings claim.
    """

    activate_pj: float = 909.0
    read_burst_pj: float = 467.0
    precharge_pj: float = 0.0  # folded into activate_pj
    background_pw_per_cycle: float = 60.0

    def access_energy_pj(self, bursts: int, activates: int) -> float:
        """Energy of a sequence of bursts requiring ``activates`` row opens."""
        if bursts < 0 or activates < 0:
            raise ValueError("bursts and activates must be non-negative")
        return activates * self.activate_pj + bursts * self.read_burst_pj


@dataclass(frozen=True)
class MemoryConfig:
    """Bundle of geometry + timing + energy used across the simulator."""

    geometry: MemoryGeometry = field(default_factory=MemoryGeometry)
    timing: DramTiming = field(default_factory=DramTiming)
    energy: DramEnergy = field(default_factory=DramEnergy)

    @staticmethod
    def ddr4_2400_quad_channel() -> "MemoryConfig":
        """The paper's 32-rank target system (4 ch × 4 DIMM × 2 ranks)."""
        return MemoryConfig()

    @staticmethod
    def small_test_system() -> "MemoryConfig":
        """A tiny 1-channel, 4-rank system convenient for unit tests."""
        return MemoryConfig(
            geometry=MemoryGeometry(
                channels=1, dimms_per_channel=2, ranks_per_dimm=2
            )
        )

    @staticmethod
    def rank_sweep(total_ranks: int) -> "MemoryConfig":
        """Geometry for rank-scaling studies: one rank per channel.

        The paper's Fig. 12 scales the memory system from 2 to 32 ranks and
        observes near-linear embedding-lookup speedup, which requires
        aggregate bandwidth to grow with rank count; this preset therefore
        adds a channel per rank (the HBM-style integration §VIII sketches).
        On a fixed-channel system the sweep saturates at the shared-bus
        bandwidth instead (use :meth:`scaled_to_ranks` for that behaviour).
        """
        if total_ranks < 1:
            raise ValueError("total_ranks must be >= 1")
        return MemoryConfig(
            geometry=MemoryGeometry(
                channels=total_ranks, dimms_per_channel=1, ranks_per_dimm=1
            )
        )

    def scaled_to_ranks(self, total_ranks: int) -> "MemoryConfig":
        """Return a config with the given total rank count.

        Ranks are added channel-first up to four channels (matching how the
        paper scales Fig. 12 from 2 to 32 ranks), then by deepening DIMMs.
        """
        if total_ranks < 1:
            raise ValueError("total_ranks must be >= 1")
        channels = min(4, total_ranks)
        per_channel = max(1, total_ranks // channels)
        if channels * per_channel != total_ranks:
            raise ValueError(
                f"total_ranks={total_ranks} not evenly divisible over "
                f"{channels} channels"
            )
        ranks_per_dimm = 2 if per_channel % 2 == 0 else 1
        dimms = per_channel // ranks_per_dimm
        return MemoryConfig(
            geometry=MemoryGeometry(
                channels=channels,
                dimms_per_channel=dimms,
                ranks_per_dimm=ranks_per_dimm,
                banks_per_rank=self.geometry.banks_per_rank,
                row_bytes=self.geometry.row_bytes,
                burst_bytes=self.geometry.burst_bytes,
            ),
            timing=self.timing,
            energy=self.energy,
        )
