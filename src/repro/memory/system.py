"""Whole-memory-system facade used by every engine in the reproduction."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.faults.plan import (
    FAULT_RANK_DEGRADED,
    FAULT_RANK_TIMEOUT,
    FaultPlan,
    RankTimeoutError,
)
from repro.faults.policy import FaultPolicy
from repro.memory.config import MemoryConfig
from repro.memory.controller import ChannelController
from repro.memory.request import Completion, ReadRequest
from repro.memory.trace import AccessStats, AccessTrace
from repro.obs.events import (
    CACHE_HIT,
    CACHE_MISS,
    CLOCK_DRAM,
    FAULT_DETECTED,
    FAULT_INJECTED,
    MEM_READ_COMPLETE,
    MEM_READ_ISSUE,
    RETRY_ISSUED,
    TraceEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.tiering.cache import CacheStats, HotIndexTier, HotTierConfig


class MemorySystem:
    """A multi-channel DDR4-like memory system.

    Channels operate fully in parallel; each channel serialises its data bus
    but overlaps bank/rank command phases.  Engines submit batches of
    :class:`ReadRequest` and receive per-request :class:`Completion` records
    plus aggregate :class:`AccessStats`.

    With a tracer attached, every serviced request emits a
    ``mem_read_issue`` / ``mem_read_complete`` event pair in the DRAM clock
    domain, carrying the channel controller's scheduling outcome (start
    cycle, burst count, row-hit flag) — the per-request lifecycle behind
    the :class:`AccessStats` aggregates.

    With a :class:`~repro.faults.plan.FaultPlan` installed, two fault
    classes fire after the base schedule is computed:

    * **rank latency degradation** — reads on a listed rank take
      ``multiplier×`` their modelled service time (finish cycles stretch;
      the start cycle and bus schedule are untouched);
    * **rank read timeout** — a read on a flaky rank is lost; a watchdog
      notices ``read_timeout_cycles`` after the nominal completion and
      re-issues it with exponential backoff, every cycle of which is
      accounted in the DRAM clock domain.  A read that exhausts
      ``max_read_retries`` either raises :class:`RankTimeoutError`
      (``fail_fast``) or lands in :attr:`failed_positions` for the engine
      to degrade around.

    Without a plan the servicing path is unchanged, byte for byte.

    With a :class:`~repro.tiering.cache.HotTierConfig` installed, a
    rank-level hot-index tier is consulted before the channel
    controllers: vector reads (requests whose ``tag`` is the vector id)
    that hit skip DRAM entirely and complete after
    ``hit_latency_cycles``; only the misses reach a controller, the
    access trace, the :class:`AccessStats`, and the ``mem_read_*``
    events (so modeled DRAM traffic is strictly non-increasing).  The
    tier is a *timing* overlay: completions keep their batch positions,
    fault injection still evaluates every position, and functional
    results are byte-identical with the tier on or off.  ``reset``
    deliberately does **not** flush the tier — hot lines survive across
    batches, which is where the cross-batch popularity win lives; use
    :meth:`reset_cache` for a cold tier.
    """

    def __init__(
        self,
        config: MemoryConfig,
        policy: str = "fcfs",
        tracer: Tracer = NULL_TRACER,
        faults: Optional[FaultPlan] = None,
        fault_policy: Optional[FaultPolicy] = None,
        cache: Optional[HotTierConfig] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.tracer = tracer
        self.faults = faults
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        self._controllers: Dict[int, ChannelController] = {
            channel: ChannelController(channel, config, policy=policy)
            for channel in range(config.geometry.channels)
        }
        self.cache_config = cache
        self.tier: Optional[HotIndexTier] = (
            HotIndexTier(cache, config.geometry.total_ranks)
            if cache is not None
            else None
        )
        self.trace = AccessTrace()
        #: positions (within the last ``execute`` batch) whose reads were
        #: lost to rank timeouts after the full retry budget (degrade mode).
        self.failed_positions: Set[int] = set()

    def reset(self) -> None:
        """Clear all bank/bus state and the access trace (tier stays warm)."""
        for controller in self._controllers.values():
            controller.reset()
        self.trace = AccessTrace()
        self.failed_positions = set()

    def reset_cache(self) -> None:
        """Flush the hot-index tier (no-op when no tier is configured)."""
        if self.tier is not None:
            self.tier.reset()

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregate tier hit/miss stats (all-zero when no tier)."""
        if self.tier is None:
            return CacheStats()
        return self.tier.stats

    def execute(
        self, requests: Sequence[ReadRequest]
    ) -> Tuple[List[Completion], AccessStats]:
        """Service a batch of reads; returns completions in request order.

        With a hot-index tier configured, each vector read (integer
        ``tag``) consults its rank's cache first, in batch-position
        order.  Hits complete synthetically after ``hit_latency_cycles``
        and never reach a channel controller, the access trace, the
        stats, or the ``mem_read_*`` events; misses (and untagged
        stream reads) take the normal DRAM path.  Positions are
        preserved throughout, so engines slice the returned list exactly
        as in an uncached run and fault injection sees every position.
        """
        tier = self.tier
        hit_positions: Set[int] = set()
        completions: List[Completion] = [None] * len(requests)  # type: ignore
        if tier is not None:
            hit_latency = tier.hit_latency_cycles
            tracing = self.tracer.enabled
            emit_packed = self.tracer.emit_packed
            for position, request in enumerate(requests):
                # Only whole-vector reads are cacheable: their tag is the
                # vector id.  Stream reads carry tuple tags and bypass.
                tag = request.tag
                if not isinstance(tag, int) or isinstance(tag, bool):
                    continue
                if tier.cache_for(request.rank) is None:
                    continue
                if tier.access(request.rank, tag):
                    finish = request.issue_cycle + hit_latency
                    completions[position] = Completion(
                        request=request,
                        start_cycle=request.issue_cycle,
                        finish_cycle=finish,
                        row_hit=False,
                        bursts=0,
                        activated=False,
                    )
                    hit_positions.add(position)
                    if tracing:
                        emit_packed(
                            CACHE_HIT,
                            finish,
                            clock=CLOCK_DRAM,
                            rank=request.rank,
                            args=(tag,),
                        )
                elif tracing:
                    emit_packed(
                        CACHE_MISS,
                        request.issue_cycle,
                        clock=CLOCK_DRAM,
                        rank=request.rank,
                        args=(tag,),
                    )

        by_channel: Dict[int, List[Tuple[int, ReadRequest]]] = {}
        geometry = self.config.geometry
        for position, request in enumerate(requests):
            if position in hit_positions:
                continue
            channel = geometry.channel_of(request.rank)
            by_channel.setdefault(channel, []).append((position, request))

        for channel, entries in by_channel.items():
            controller = self._controllers[channel]
            for position, completion in controller.service_batch(entries):
                completions[position] = completion

        self.failed_positions = set()
        if self.faults is not None and self.faults.touches_memory:
            # Faults evaluate every position — hits included — so the set
            # of failed positions (and hence statuses) is invariant to the
            # tier: injection is keyed by batch position, and a cached run
            # must degrade exactly like the uncached run it models.
            for position, completion in enumerate(completions):
                if completion is not None:
                    completions[position] = self._apply_read_faults(
                        position, completion
                    )

        done = [c for c in completions if c is not None]
        dram = [
            completion
            for position, completion in enumerate(completions)
            if completion is not None and position not in hit_positions
        ]
        self.trace.extend(dram)
        if self.tracer.enabled:
            emit_packed = self.tracer.emit_packed
            for completion in dram:
                request = completion.request
                emit_packed(
                    MEM_READ_ISSUE,
                    request.issue_cycle,
                    clock=CLOCK_DRAM,
                    rank=request.rank,
                    args=(request.bank, request.bytes_),
                )
                emit_packed(
                    MEM_READ_COMPLETE,
                    completion.finish_cycle,
                    clock=CLOCK_DRAM,
                    rank=request.rank,
                    args=(
                        request.bank,
                        request.bytes_,
                        completion.start_cycle,
                        completion.row_hit,
                        completion.bursts,
                    ),
                )
        return done, AccessStats.from_completions(dram)

    def execute_one(self, request: ReadRequest) -> Completion:
        completions, _ = self.execute([request])
        return completions[0]

    # --- fault injection ---------------------------------------------------
    def _apply_read_faults(self, position: int, completion: Completion) -> Completion:
        """Stretch, retry, or fail one completion per the installed plan.

        Timeout arithmetic runs entirely in DRAM cycles: the watchdog
        notices a lost read ``read_timeout_cycles`` after its nominal
        finish, each retry waits ``backoff · 2^attempt`` before re-issuing,
        and the surviving completion's ``finish_cycle`` carries the full
        penalty — downstream the engine converts it to PE cycles like any
        other memory latency, so chaos runs have honest timing.
        """
        assert self.faults is not None
        plan = self.faults
        policy = self.fault_policy
        rank = completion.request.rank

        multiplier = plan.read_latency_multiplier(rank)
        if multiplier != 1.0:
            service = completion.finish_cycle - completion.start_cycle
            stretched = completion.start_cycle + int(round(service * multiplier))
            completion = replace(completion, finish_cycle=stretched)
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        FAULT_INJECTED,
                        cycle=completion.finish_cycle,
                        clock=CLOCK_DRAM,
                        rank=rank,
                        args={
                            "fault": FAULT_RANK_DEGRADED,
                            "multiplier": multiplier,
                        },
                    )
                )

        penalty = 0
        attempt = 0
        while plan.read_times_out(rank, position, attempt):
            deadline = completion.finish_cycle + penalty + policy.read_timeout_cycles
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        FAULT_INJECTED,
                        cycle=deadline,
                        clock=CLOCK_DRAM,
                        rank=rank,
                        args={"fault": FAULT_RANK_TIMEOUT, "attempt": attempt},
                    )
                )
            exhausted = attempt >= policy.max_read_retries
            if self.tracer.enabled:
                args = {"fault": FAULT_RANK_TIMEOUT, "attempt": attempt}
                if exhausted:
                    args["fatal"] = True
                self.tracer.emit(
                    TraceEvent(
                        FAULT_DETECTED,
                        cycle=deadline,
                        clock=CLOCK_DRAM,
                        rank=rank,
                        args=args,
                    )
                )
            if exhausted:
                if policy.fail_fast:
                    raise RankTimeoutError(
                        f"read on rank {rank} (batch position {position}) "
                        f"timed out {attempt + 1} times; retry budget "
                        f"({policy.max_read_retries}) exhausted"
                    )
                self.failed_positions.add(position)
                return replace(completion, finish_cycle=deadline)
            backoff = policy.read_retry_backoff_cycles * (2**attempt)
            if self.tracer.enabled:
                self.tracer.emit(
                    TraceEvent(
                        RETRY_ISSUED,
                        cycle=deadline + backoff,
                        clock=CLOCK_DRAM,
                        rank=rank,
                        args={
                            "fault": FAULT_RANK_TIMEOUT,
                            "attempt": attempt + 1,
                            "backoff_cycles": backoff,
                        },
                    )
                )
            penalty += policy.read_timeout_cycles + backoff
            attempt += 1
        if penalty:
            completion = replace(
                completion, finish_cycle=completion.finish_cycle + penalty
            )
        return completion
