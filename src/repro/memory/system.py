"""Whole-memory-system facade used by every engine in the reproduction."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.memory.config import MemoryConfig
from repro.memory.controller import ChannelController
from repro.memory.request import Completion, ReadRequest
from repro.memory.trace import AccessStats, AccessTrace
from repro.obs.events import (
    CLOCK_DRAM,
    MEM_READ_COMPLETE,
    MEM_READ_ISSUE,
    TraceEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer


class MemorySystem:
    """A multi-channel DDR4-like memory system.

    Channels operate fully in parallel; each channel serialises its data bus
    but overlaps bank/rank command phases.  Engines submit batches of
    :class:`ReadRequest` and receive per-request :class:`Completion` records
    plus aggregate :class:`AccessStats`.

    With a tracer attached, every serviced request emits a
    ``mem_read_issue`` / ``mem_read_complete`` event pair in the DRAM clock
    domain, carrying the channel controller's scheduling outcome (start
    cycle, burst count, row-hit flag) — the per-request lifecycle behind
    the :class:`AccessStats` aggregates.
    """

    def __init__(
        self,
        config: MemoryConfig,
        policy: str = "fcfs",
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.config = config
        self.policy = policy
        self.tracer = tracer
        self._controllers: Dict[int, ChannelController] = {
            channel: ChannelController(channel, config, policy=policy)
            for channel in range(config.geometry.channels)
        }
        self.trace = AccessTrace()

    def reset(self) -> None:
        """Clear all bank/bus state and the access trace."""
        for controller in self._controllers.values():
            controller.reset()
        self.trace = AccessTrace()

    def execute(
        self, requests: Sequence[ReadRequest]
    ) -> Tuple[List[Completion], AccessStats]:
        """Service a batch of reads; returns completions in request order."""
        by_channel: Dict[int, List[Tuple[int, ReadRequest]]] = {}
        geometry = self.config.geometry
        for position, request in enumerate(requests):
            channel = geometry.channel_of(request.rank)
            by_channel.setdefault(channel, []).append((position, request))

        completions: List[Completion] = [None] * len(requests)  # type: ignore
        for channel, entries in by_channel.items():
            controller = self._controllers[channel]
            for position, completion in controller.service_batch(entries):
                completions[position] = completion

        done = [c for c in completions if c is not None]
        self.trace.extend(done)
        if self.tracer.enabled:
            for completion in done:
                request = completion.request
                self.tracer.emit(
                    TraceEvent(
                        MEM_READ_ISSUE,
                        cycle=request.issue_cycle,
                        clock=CLOCK_DRAM,
                        rank=request.rank,
                        args={"bank": request.bank, "bytes": request.bytes_},
                    )
                )
                self.tracer.emit(
                    TraceEvent(
                        MEM_READ_COMPLETE,
                        cycle=completion.finish_cycle,
                        clock=CLOCK_DRAM,
                        rank=request.rank,
                        args={
                            "bank": request.bank,
                            "bytes": request.bytes_,
                            "start_cycle": completion.start_cycle,
                            "row_hit": completion.row_hit,
                            "bursts": completion.bursts,
                        },
                    )
                )
        return done, AccessStats.from_completions(done)

    def execute_one(self, request: ReadRequest) -> Completion:
        completions, _ = self.execute([request])
        return completions[0]
