"""Per-bank row-buffer state machine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.config import DramTiming


@dataclass
class BankAccessOutcome:
    """Result of presenting one column access to a bank."""

    command_start: int
    data_ready: int
    row_hit: bool
    activated: bool


class Bank:
    """One DRAM bank: an open-row buffer plus command timing state.

    The bank tracks which row (if any) its row buffer holds, the earliest
    cycle it can accept another command, and when the current row was
    activated (to honour ``tRAS`` before precharging).
    """

    def __init__(self, timing: DramTiming) -> None:
        self._timing = timing
        self.open_row: Optional[int] = None
        self.ready_cycle: int = 0
        self._activate_cycle: int = 0

    def reset(self) -> None:
        """Precharge the bank and clear all timing state."""
        self.open_row = None
        self.ready_cycle = 0
        self._activate_cycle = 0

    def access(
        self, row: int, at_cycle: int, bursts: int, is_write: bool = False
    ) -> BankAccessOutcome:
        """Service a read or write of ``bursts`` bursts at/after ``at_cycle``.

        For reads, returns when the first data beat is ready; for writes,
        when the bank expects the first data beat.  The caller (channel
        controller) layers shared-bus contention on top.
        """
        if bursts <= 0:
            raise ValueError("bursts must be positive")
        t = max(at_cycle, self.ready_cycle)
        timing = self._timing

        if self.open_row == row:
            row_hit = True
            activated = False
        elif self.open_row is None:
            row_hit = False
            activated = True
            t = t + timing.tRCD
            self._activate_cycle = t
        else:
            # Row conflict: precharge (respecting tRAS) then activate.
            row_hit = False
            activated = True
            precharge_at = max(t, self._activate_cycle + timing.tRAS)
            t = precharge_at + timing.tRP + timing.tRCD
            self._activate_cycle = t

        command_start = max(at_cycle, self.ready_cycle)
        data_ready = t + (timing.tCWL if is_write else timing.tCAS)
        # The bank can accept its next column command once this access's
        # column commands have streamed out; writes additionally hold the
        # bank through the write-recovery window.
        self.ready_cycle = t + bursts * timing.tCCD
        if is_write:
            self.ready_cycle += timing.tWR
        self.open_row = row
        return BankAccessOutcome(
            command_start=command_start,
            data_ready=data_ready,
            row_hit=row_hit,
            activated=activated,
        )
