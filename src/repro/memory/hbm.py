"""HBM integration (paper §VIII future work).

"The same idea of Fafnir can also be integrated with High Bandwidth Memory
(HBM) by connecting the leaf PEs to the 32 pseudo channels rather than the
ranks."  An HBM2 stack exposes 32 pseudo-channels, each an independent
narrow channel with its own command/data path — in this simulator's terms,
32 channels of one rank each with HBM-ish timing and a 2 KB row.

The FAFNIR tree is unchanged: 16 leaf PEs now each serve two
pseudo-channels (1PE:2PC), mirroring the DDR4 1PE:2R arrangement.
"""

from __future__ import annotations

from repro.memory.config import DramTiming, MemoryConfig, MemoryGeometry

# HBM2 @ ~1 GHz pseudo-channel clock: tighter core timing than DDR4 and a
# shorter burst occupancy per 64 B thanks to the wide interface.
HBM2_TIMING = DramTiming(
    tRCD=14,
    tRP=14,
    tCAS=14,
    tRAS=33,
    tCCD=2,
    tBL=2,
    tRTRS=0,  # pseudo-channels do not share a data bus
)

HBM2_GEOMETRY = MemoryGeometry(
    channels=32,
    dimms_per_channel=1,
    ranks_per_dimm=1,
    banks_per_rank=16,
    row_bytes=2048,
    burst_bytes=64,
)


def hbm2_stack() -> MemoryConfig:
    """One HBM2 stack: 32 pseudo-channels, FAFNIR leaves at 1PE:2PC."""
    return MemoryConfig(geometry=HBM2_GEOMETRY, timing=HBM2_TIMING)


def pseudo_channel_count(config: MemoryConfig) -> int:
    """Pseudo-channels of an HBM-style config (= channels here)."""
    return config.geometry.channels
