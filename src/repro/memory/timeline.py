"""ASCII timelines of DRAM activity — a debugging lens on the substrate.

Rendering a batch's completions as per-rank occupancy strips makes the
behavioural differences between the engines visible at a glance: FAFNIR's
rank-parallel burst, TensorDIMM's serialized all-rank stripes, the refresh
blackouts.  Used by tests and handy in a REPL; not part of any timed path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.memory.request import Completion


@dataclass(frozen=True)
class TimelineOptions:
    width: int = 72
    busy_char: str = "#"
    idle_char: str = "."

    def __post_init__(self) -> None:
        if self.width < 8:
            raise ValueError("width must be at least 8")
        if len(self.busy_char) != 1 or len(self.idle_char) != 1:
            raise ValueError("busy/idle markers must be single characters")


def render_rank_timeline(
    completions: Sequence[Completion], options: TimelineOptions = None
) -> str:
    """One text row per rank; '#' marks cycles the rank serviced data.

    The horizon [0, max finish] is scaled to ``width`` columns, so each
    column is a bucket of cycles; a bucket is busy if any completion's
    [start, finish) span touches it.
    """
    if not completions:
        raise ValueError("no completions to render")
    options = options or TimelineOptions()
    horizon = max(c.finish_cycle for c in completions)
    if horizon == 0:
        raise ValueError("degenerate timeline (zero-length horizon)")

    per_rank: Dict[int, List[Completion]] = {}
    for completion in completions:
        per_rank.setdefault(completion.request.rank, []).append(completion)

    scale = options.width / horizon
    lines: List[str] = [
        f"cycles 0..{horizon} ({horizon / options.width:.1f} per column)"
    ]
    for rank in sorted(per_rank):
        row = [options.idle_char] * options.width
        for completion in per_rank[rank]:
            start = int(completion.start_cycle * scale)
            stop = max(start + 1, int(completion.finish_cycle * scale))
            for column in range(start, min(stop, options.width)):
                row[column] = options.busy_char
        lines.append(f"rank {rank:3d} |{''.join(row)}|")
    return "\n".join(lines)


def utilization_summary(completions: Sequence[Completion]) -> Dict[int, float]:
    """Per-rank fraction of the horizon spent servicing requests.

    Overlapping spans within one rank are merged before measuring, so the
    result is true occupancy, not a double-counted sum.
    """
    if not completions:
        raise ValueError("no completions to summarise")
    horizon = max(c.finish_cycle for c in completions)
    per_rank: Dict[int, List[tuple]] = {}
    for completion in completions:
        per_rank.setdefault(completion.request.rank, []).append(
            (completion.start_cycle, completion.finish_cycle)
        )
    summary: Dict[int, float] = {}
    for rank, spans in per_rank.items():
        busy = 0
        current_start, current_stop = None, None
        for start, stop in sorted(spans):
            if current_stop is None or start > current_stop:
                if current_stop is not None:
                    busy += current_stop - current_start
                current_start, current_stop = start, stop
            else:
                current_stop = max(current_stop, stop)
        if current_stop is not None:
            busy += current_stop - current_start
        summary[rank] = busy / horizon if horizon else 0.0
    return summary

def render_trace_timeline(
    events: Sequence["TraceEvent"], options: TimelineOptions = None
) -> str:
    """Render per-rank occupancy strips from recorded trace events.

    Accepts the ``mem_read_complete`` events a traced run emits (other
    kinds are ignored), so a captured event stream can be visualised
    without keeping the original :class:`Completion` records around —
    the observability layer's view of the same substrate activity.
    """
    from repro.obs.events import MEM_READ_COMPLETE

    spans = [
        (event.rank, event.args.get("start_cycle", event.cycle), event.cycle)
        for event in events
        if event.kind == MEM_READ_COMPLETE and event.rank is not None
    ]
    if not spans:
        raise ValueError("no mem_read_complete events to render")
    options = options or TimelineOptions()
    horizon = max(stop for _, _, stop in spans)
    if horizon == 0:
        raise ValueError("degenerate timeline (zero-length horizon)")

    per_rank: Dict[int, List[tuple]] = {}
    for rank, start, stop in spans:
        per_rank.setdefault(rank, []).append((start, stop))

    scale = options.width / horizon
    lines: List[str] = [
        f"cycles 0..{horizon} ({horizon / options.width:.1f} per column)"
    ]
    for rank in sorted(per_rank):
        row = [options.idle_char] * options.width
        for start, stop in per_rank[rank]:
            first = int(start * scale)
            last = max(first + 1, int(stop * scale))
            for column in range(first, min(last, options.width)):
                row[column] = options.busy_char
        lines.append(f"rank {rank:3d} |{''.join(row)}|")
    return "\n".join(lines)
