"""ASCII timelines of DRAM activity — a debugging lens on the substrate.

Rendering a batch's completions as per-rank occupancy strips makes the
behavioural differences between the engines visible at a glance: FAFNIR's
rank-parallel burst, TensorDIMM's serialized all-rank stripes, the refresh
blackouts.  Used by tests and handy in a REPL; not part of any timed path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.memory.request import Completion


@dataclass(frozen=True)
class TimelineOptions:
    width: int = 72
    busy_char: str = "#"
    idle_char: str = "."

    def __post_init__(self) -> None:
        if self.width < 8:
            raise ValueError("width must be at least 8")
        if len(self.busy_char) != 1 or len(self.idle_char) != 1:
            raise ValueError("busy/idle markers must be single characters")


def render_rank_timeline(
    completions: Sequence[Completion], options: TimelineOptions = None
) -> str:
    """One text row per rank; '#' marks cycles the rank serviced data.

    The horizon [0, max finish] is scaled to ``width`` columns, so each
    column is a bucket of cycles; a bucket is busy if any completion's
    [start, finish) span touches it.
    """
    if not completions:
        raise ValueError("no completions to render")
    options = options or TimelineOptions()
    horizon = max(c.finish_cycle for c in completions)
    if horizon == 0:
        raise ValueError("degenerate timeline (zero-length horizon)")

    per_rank: Dict[int, List[Completion]] = {}
    for completion in completions:
        per_rank.setdefault(completion.request.rank, []).append(completion)

    scale = options.width / horizon
    lines: List[str] = [
        f"cycles 0..{horizon} ({horizon / options.width:.1f} per column)"
    ]
    for rank in sorted(per_rank):
        row = [options.idle_char] * options.width
        for completion in per_rank[rank]:
            start = int(completion.start_cycle * scale)
            stop = max(start + 1, int(completion.finish_cycle * scale))
            for column in range(start, min(stop, options.width)):
                row[column] = options.busy_char
        lines.append(f"rank {rank:3d} |{''.join(row)}|")
    return "\n".join(lines)


def utilization_summary(completions: Sequence[Completion]) -> Dict[int, float]:
    """Per-rank fraction of the horizon spent servicing requests.

    Overlapping spans within one rank are merged before measuring, so the
    result is true occupancy, not a double-counted sum.
    """
    if not completions:
        raise ValueError("no completions to summarise")
    horizon = max(c.finish_cycle for c in completions)
    per_rank: Dict[int, List[tuple]] = {}
    for completion in completions:
        per_rank.setdefault(completion.request.rank, []).append(
            (completion.start_cycle, completion.finish_cycle)
        )
    summary: Dict[int, float] = {}
    for rank, spans in per_rank.items():
        busy = 0
        current_start, current_stop = None, None
        for start, stop in sorted(spans):
            if current_stop is None or start > current_stop:
                if current_stop is not None:
                    busy += current_stop - current_start
                current_start, current_stop = start, stop
            else:
                current_stop = max(current_stop, stop)
        if current_stop is not None:
            busy += current_stop - current_start
        summary[rank] = busy / horizon if horizon else 0.0
    return summary

def render_trace_timeline(
    events: Sequence["TraceEvent"], options: TimelineOptions = None
) -> str:
    """Render per-rank occupancy strips from recorded trace events.

    Accepts the ``mem_read_complete`` events a traced run emits (other
    kinds are ignored), so a captured event stream can be visualised
    without keeping the original :class:`Completion` records around —
    the observability layer's view of the same substrate activity.
    """
    from repro.obs.events import MEM_READ_COMPLETE

    spans = [
        (event.rank, event.args.get("start_cycle", event.cycle), event.cycle)
        for event in events
        if event.kind == MEM_READ_COMPLETE and event.rank is not None
    ]
    if not spans:
        raise ValueError("no mem_read_complete events to render")
    options = options or TimelineOptions()
    horizon = max(stop for _, _, stop in spans)
    if horizon == 0:
        raise ValueError("degenerate timeline (zero-length horizon)")

    per_rank: Dict[int, List[tuple]] = {}
    for rank, start, stop in spans:
        per_rank.setdefault(rank, []).append((start, stop))

    scale = options.width / horizon
    lines: List[str] = [
        f"cycles 0..{horizon} ({horizon / options.width:.1f} per column)"
    ]
    for rank in sorted(per_rank):
        row = [options.idle_char] * options.width
        for start, stop in per_rank[rank]:
            first = int(start * scale)
            last = max(first + 1, int(stop * scale))
            for column in range(first, min(last, options.width)):
                row[column] = options.busy_char
        lines.append(f"rank {rank:3d} |{''.join(row)}|")
    return "\n".join(lines)


def render_fault_timeline(
    events: Sequence["TraceEvent"], options: TimelineOptions = None
) -> str:
    """Per-rank occupancy strips with fault markers overlaid.

    Extends :func:`render_trace_timeline`'s view of ``mem_read_complete``
    spans with the fault lifecycle a chaos run records on the memory side:
    columns where a ``fault_injected`` fired are marked ``~``, columns
    where a ``fault_detected`` / ``retry_issued`` fired are marked ``!``
    (detection wins if both land in one bucket), so a degraded rank's
    stretched bursts and its retry storms are visible in the same strip.
    """
    from repro.obs.events import (
        FAULT_DETECTED,
        FAULT_INJECTED,
        MEM_READ_COMPLETE,
        RETRY_ISSUED,
    )

    spans = []
    marks: Dict[int, List[tuple]] = {}
    fault_counts: Dict[str, int] = {}
    for event in events:
        if event.rank is None:
            continue
        if event.kind == MEM_READ_COMPLETE:
            spans.append(
                (event.rank, event.args.get("start_cycle", event.cycle), event.cycle)
            )
        elif event.kind == FAULT_INJECTED:
            marks.setdefault(event.rank, []).append((event.cycle, "~"))
            fault = str(event.args.get("fault", "unknown"))
            fault_counts[fault] = fault_counts.get(fault, 0) + 1
        elif event.kind in (FAULT_DETECTED, RETRY_ISSUED):
            marks.setdefault(event.rank, []).append((event.cycle, "!"))
    if not spans and not marks:
        raise ValueError("no memory or fault events to render")
    options = options or TimelineOptions()
    # An all-failed run (every shard dead, nothing dispatched) legitimately
    # has every event at cycle 0 — render a one-cycle horizon rather than
    # refusing; only a truly empty stream raises above.
    horizon = max(
        [stop for _, _, stop in spans]
        + [cycle for per_rank in marks.values() for cycle, _ in per_rank]
        + [1]
    )

    per_rank: Dict[int, List[tuple]] = {}
    for rank, start, stop in spans:
        per_rank.setdefault(rank, []).append((start, stop))

    scale = options.width / horizon
    lines: List[str] = [
        f"cycles 0..{horizon} ({horizon / options.width:.1f} per column; "
        "~ fault injected, ! detected/retried"
    ]
    for rank in sorted(set(per_rank) | set(marks)):
        row = [options.idle_char] * options.width
        for start, stop in per_rank.get(rank, []):
            first = int(start * scale)
            last = max(first + 1, int(stop * scale))
            for column in range(first, min(last, options.width)):
                row[column] = options.busy_char
        # Injections first so detections/retries overwrite them on ties.
        for wanted in ("~", "!"):
            for cycle, mark in marks.get(rank, []):
                if mark == wanted:
                    row[min(int(cycle * scale), options.width - 1)] = mark
        lines.append(f"rank {rank:3d} |{''.join(row)}|")
    if fault_counts:
        summary = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(fault_counts.items())
        )
        lines.append(f"faults: {summary}")
    return "\n".join(lines)
