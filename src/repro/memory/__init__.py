"""Cycle-approximate DDR4-like memory substrate.

This package is the DRAM the FAFNIR tree (and every baseline) reads from.
It models the three first-order effects the paper's evaluation depends on:
row-buffer hits vs conflicts, bank/rank-level parallelism, and per-channel
data-bus serialisation.
"""

from repro.memory.config import (
    DramEnergy,
    DramTiming,
    MemoryConfig,
    MemoryGeometry,
)
from repro.memory.hbm import HBM2_GEOMETRY, HBM2_TIMING, hbm2_stack, pseudo_channel_count
from repro.memory.mapping import (
    ColumnMajorPlacement,
    RowMajorPlacement,
    StreamPlacement,
    VectorPlacement,
)
from repro.memory.request import Completion, ReadRequest, WriteRequest
from repro.memory.system import MemorySystem
from repro.memory.timeline import (
    TimelineOptions,
    render_fault_timeline,
    render_rank_timeline,
    render_trace_timeline,
)
from repro.memory.trace import AccessStats, AccessTrace

__all__ = [
    "AccessStats",
    "AccessTrace",
    "ColumnMajorPlacement",
    "Completion",
    "DramEnergy",
    "DramTiming",
    "HBM2_GEOMETRY",
    "HBM2_TIMING",
    "hbm2_stack",
    "pseudo_channel_count",
    "MemoryConfig",
    "MemoryGeometry",
    "MemorySystem",
    "ReadRequest",
    "RowMajorPlacement",
    "StreamPlacement",
    "TimelineOptions",
    "VectorPlacement",
    "WriteRequest",
    "render_fault_timeline",
    "render_rank_timeline",
    "render_trace_timeline",
]
