"""Per-channel memory controller.

Each channel owns a set of ranks × banks and one shared data bus.  Requests
to different banks and ranks overlap their command phases (this is the
rank-level parallelism both RecNMP and FAFNIR exploit); the data bus is the
serialising resource, with a small rank-to-rank switching penalty.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.memory.bank import Bank
from repro.memory.config import MemoryConfig
from repro.memory.request import Completion, ReadRequest


class ChannelController:
    """Schedules read requests for one channel, in arrival order per bank.

    The model is cycle-approximate: an open-page policy with first-come
    service order (requests are presented sorted by ``issue_cycle``).  It
    captures the three effects the paper's comparison rests on — row-buffer
    hits vs conflicts, bank/rank parallelism, and data-bus serialisation.
    """

    POLICIES = ("fcfs", "frfcfs")

    def __init__(
        self,
        channel_id: int,
        config: MemoryConfig,
        policy: str = "fcfs",
        frfcfs_window: int = 8,
    ) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown scheduling policy {policy!r}")
        if frfcfs_window < 1:
            raise ValueError("frfcfs_window must be positive")
        self.channel_id = channel_id
        self.policy = policy
        self.frfcfs_window = frfcfs_window
        self._config = config
        self._banks: Dict[Tuple[int, int], Bank] = {}
        self._bus_free_cycle = 0
        self._last_rank: Optional[int] = None

    def reset(self) -> None:
        self._banks.clear()
        self._bus_free_cycle = 0
        self._last_rank = None

    def _bank(self, rank: int, bank: int) -> Bank:
        key = (rank, bank)
        existing = self._banks.get(key)
        if existing is None:
            existing = Bank(self._config.timing)
            self._banks[key] = existing
        return existing

    def _after_refresh(self, rank: int, cycle: int) -> int:
        """Push a command past any refresh blackout it overlaps.

        With refresh enabled, each rank is unavailable for ``tRFC`` cycles
        every ``tREFI``; refreshes are staggered across ranks (rank id ×
        tREFI / ranks-per-channel offset) as real controllers do.
        """
        timing = self._config.timing
        if not timing.refresh_enabled:
            return cycle
        per_channel = max(1, self._config.geometry.ranks_per_channel)
        offset = (rank % per_channel) * (timing.tREFI // per_channel)
        phase = (cycle - offset) % timing.tREFI
        if 0 <= phase < timing.tRFC:
            return cycle + (timing.tRFC - phase)
        return cycle

    def service(self, request: ReadRequest) -> Completion:
        """Service one request and return its completion record."""
        geometry = self._config.geometry
        timing = self._config.timing
        if geometry.channel_of(request.rank) != self.channel_id:
            raise ValueError(
                f"request for rank {request.rank} routed to channel "
                f"{self.channel_id}"
            )
        if request.column + request.bytes_ > geometry.row_bytes:
            raise ValueError("request spans a row boundary")

        bursts = math.ceil(request.bytes_ / geometry.burst_bytes)
        bank = self._bank(request.rank, request.bank)
        issue = self._after_refresh(request.rank, request.issue_cycle)
        outcome = bank.access(
            request.row, issue, bursts, is_write=request.is_write
        )

        transfer_start = max(outcome.data_ready, self._bus_free_cycle)
        if self._last_rank is not None and self._last_rank != request.rank:
            transfer_start += timing.tRTRS
        finish = transfer_start + bursts * timing.tBL

        self._bus_free_cycle = finish
        self._last_rank = request.rank
        return Completion(
            request=request,
            start_cycle=outcome.command_start,
            finish_cycle=finish,
            row_hit=outcome.row_hit,
            bursts=bursts,
            activated=outcome.activated,
        )

    def service_all(self, requests: List[ReadRequest]) -> List[Completion]:
        """Service requests in issue order; returns completions in that order."""
        ordered = sorted(requests, key=lambda r: r.issue_cycle)
        return [self.service(r) for r in ordered]

    # ------------------------------------------------------------------
    def _would_row_hit(self, request: ReadRequest) -> bool:
        bank = self._banks.get((request.rank, request.bank))
        return bank is not None and bank.open_row == request.row

    def service_batch(
        self, entries: List[Tuple[int, ReadRequest]]
    ) -> List[Tuple[int, Completion]]:
        """Service (position, request) pairs under the configured policy.

        ``fcfs`` serves in issue order.  ``frfcfs`` (first-ready FCFS)
        prefers, within a small look-ahead window, requests that hit the
        currently open row of their bank — the standard open-page scheduler
        optimisation — falling back to the oldest request.
        """
        pending = sorted(entries, key=lambda item: (item[1].issue_cycle, item[0]))
        if self.policy == "fcfs":
            return [(position, self.service(request)) for position, request in pending]

        serviced: List[Tuple[int, Completion]] = []
        while pending:
            window = pending[: self.frfcfs_window]
            chosen = next(
                (item for item in window if self._would_row_hit(item[1])),
                window[0],
            )
            pending.remove(chosen)
            position, request = chosen
            serviced.append((position, self.service(request)))
        return serviced
