"""Iteration/round planning for SpMV on FAFNIR (paper Fig. 8 and Fig. 9).

A matrix wider than the tree's operand capacity is split along its
uncompressed dimension into column chunks of ``vector_size`` columns.
Iteration 0 multiplies one chunk per round, producing one partial-result
stream per chunk; merge iterations (> 0) then combine up to
``merge_fan_in`` partial streams per round until one stream remains.

``merge_fan_in`` reflects how many ordered partial streams the tree can
interleave at once (32 rank streams × 4-deep interleave buffers = 128 by
default) and is chosen so the planner reproduces Fig. 9's observation that
matrices beyond 5 M columns still need **no more than two merge
iterations** at vector size 2048.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class SpmvPlan:
    """The execution schedule for one SpMV of a given width."""

    n_cols: int
    vector_size: int = 2048
    merge_fan_in: int = 128

    def __post_init__(self) -> None:
        if self.n_cols <= 0:
            raise ValueError("n_cols must be positive")
        if self.vector_size <= 0:
            raise ValueError("vector_size must be positive")
        if self.merge_fan_in < 2:
            raise ValueError("merge_fan_in must be at least 2")

    @property
    def chunks(self) -> int:
        """Column chunks = rounds of iteration 0."""
        return math.ceil(self.n_cols / self.vector_size)

    @property
    def rounds_per_iteration(self) -> List[int]:
        """Rounds in each iteration, iteration 0 first."""
        rounds = [self.chunks]
        streams = self.chunks
        while streams > 1:
            streams = math.ceil(streams / self.merge_fan_in)
            rounds.append(streams)
        return rounds

    @property
    def iterations(self) -> int:
        """Total iterations including the multiply iteration 0."""
        return len(self.rounds_per_iteration)

    @property
    def merge_iterations(self) -> int:
        return self.iterations - 1

    @property
    def total_merges(self) -> int:
        """Partial streams eliminated by merging (Fig. 9's merge count)."""
        merges = 0
        streams = self.chunks
        while streams > 1:
            after = math.ceil(streams / self.merge_fan_in)
            merges += streams - after
            streams = after
        return merges


def sweep(
    column_counts: List[int], vector_size: int, merge_fan_in: int = 128
) -> List[SpmvPlan]:
    """Plans for a sweep of matrix widths (the Fig. 9 x-axis)."""
    return [
        SpmvPlan(n_cols=n, vector_size=vector_size, merge_fan_in=merge_fan_in)
        for n in column_counts
    ]
