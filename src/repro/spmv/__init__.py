"""SpMV on FAFNIR: planner, engine, streaming costs, and applications."""

from repro.spmv.apps import AppResult, bfs, jacobi_solve, pagerank, sssp
from repro.spmv.fafnir_spmv import (
    FafnirSpmvEngine,
    FafnirSpmvParameters,
    STREAM_ENTRY_BYTES,
)
from repro.spmv.interface import SpmvEngine, SpmvResult, SpmvStats
from repro.spmv.planner import SpmvPlan, sweep
from repro.spmv.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    get_semiring,
)
from repro.spmv.solvers import EigenResult, conjugate_gradient, power_iteration
from repro.spmv.spmm import SpmmResult, spmm

__all__ = [
    "AppResult",
    "FafnirSpmvEngine",
    "FafnirSpmvParameters",
    "STREAM_ENTRY_BYTES",
    "SpmvEngine",
    "SpmvPlan",
    "SpmvResult",
    "SpmvStats",
    "SpmmResult",
    "spmm",
    "EigenResult",
    "MAX_TIMES",
    "MIN_PLUS",
    "OR_AND",
    "PLUS_TIMES",
    "Semiring",
    "get_semiring",
    "sssp",
    "bfs",
    "conjugate_gradient",
    "power_iteration",
    "jacobi_solve",
    "pagerank",
    "sweep",
]
