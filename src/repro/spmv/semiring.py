"""Semiring algebra for generalized SpMV.

The FAFNIR tree only needs its reduction to be associative and commutative
(§IV); nothing ties it to (+, ×).  Replacing the pair with another semiring
turns the same hardware into other graph kernels:

* ``PLUS_TIMES`` — ordinary SpMV (PageRank, solvers);
* ``MIN_PLUS`` — the tropical semiring: one relaxation step of single-source
  shortest paths (Bellman-Ford);
* ``MAX_TIMES`` — widest-path / reliability propagation;
* ``OR_AND`` — Boolean reachability (BFS frontiers).

A semiring's additive identity doubles as the "no edge" value, which is what
makes sparse storage consistent: unstored entries contribute the identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class Semiring:
    """An (⊕, ⊗) pair with the ⊕-identity.

    ``add`` must be associative and commutative (it runs in the tree);
    ``multiply`` runs at the leaf PEs (paper Table II: "leaf PE:
    multiplication with vector").
    """

    name: str
    add: Callable[[np.ndarray, np.ndarray], np.ndarray]
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def reduce(self, values: np.ndarray) -> float:
        """⊕-fold of a 1-D array; the ⊕-identity for an empty one."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return self.zero
        result = values[0]
        for value in values[1:]:
            result = self.add(result, value)
        return float(result)

    def matvec(self, matrix, x: np.ndarray) -> np.ndarray:
        """Generalized y = A ⊗ x with ⊕-accumulation, on a LIL matrix."""
        x = np.asarray(x, dtype=np.float64)
        n_rows, n_cols = matrix.shape
        if x.shape != (n_cols,):
            raise ValueError(f"operand has shape {x.shape}, expected ({n_cols},)")
        y = np.full(n_rows, self.zero)
        for row, (indices, values) in enumerate(
            zip(matrix.row_indices, matrix.row_values)
        ):
            if len(indices):
                y[row] = self.reduce(self.multiply(values, x[indices]))
        return y

    def __repr__(self) -> str:
        return f"Semiring({self.name!r})"


PLUS_TIMES = Semiring("plus_times", np.add, np.multiply, 0.0)
MIN_PLUS = Semiring("min_plus", np.minimum, np.add, np.inf)
MAX_TIMES = Semiring("max_times", np.maximum, np.multiply, 0.0)
OR_AND = Semiring(
    "or_and",
    lambda a, b: np.maximum(a != 0, b != 0).astype(np.float64),
    lambda a, b: np.logical_and(a != 0, b != 0).astype(np.float64),
    0.0,
)

_SEMIRINGS: Dict[str, Semiring] = {
    s.name: s for s in (PLUS_TIMES, MIN_PLUS, MAX_TIMES, OR_AND)
}


def get_semiring(name: str) -> Semiring:
    try:
        return _SEMIRINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; available: {sorted(_SEMIRINGS)}"
        ) from None
