"""SpMV on the FAFNIR tree (paper §IV-D, Fig. 7/8).

Mechanism differences from embedding lookup (paper Table II):

* indices are **unknown** until read — both values and column/row indices
  stream from memory;
* leaf PEs first **multiply** each non-zero by the buffered operand-vector
  element (vectorized over independent elements, Fig. 7c);
* the tree reduces products that share a **row index** into output elements.

Wide matrices run in iterations of rounds (Fig. 8): iteration 0 multiplies
one column chunk per round; merge iterations re-stream partial results
through the same tree (leaf PEs skip the multiply) until one stream remains.

Because FAFNIR applies SpMV to the stream *as it arrives* — no decompression
stage, no intermediate write-out — iteration 0 runs at stream bandwidth.
Its merge, by contrast, is the generic tree rather than Two-Step's dedicated
multi-way merge core, so merge throughput is lower (the trade Fig. 14 shows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.clocks import DRAM_CLOCK, PE_CLOCK, convert_cycles
from repro.core.config import FafnirConfig
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.spmv.interface import SpmvEngine, SpmvResult, SpmvStats
from repro.spmv.planner import SpmvPlan
from repro.spmv.semiring import PLUS_TIMES, Semiring
from repro.spmv.streaming import modelled_stream_cycles, stream_read_cycles

# Bytes per streamed non-zero: 4 B value + 4 B column (or row) index.
STREAM_ENTRY_BYTES = 8


@dataclass(frozen=True)
class FafnirSpmvParameters:
    """Throughput parameters of the tree in SpMV mode.

    ``multiply_lanes_per_leaf``: vectorized multiplier lanes per leaf PE
    (Fig. 7c).  ``merge_elements_per_cycle``: system-wide rate at which the
    generic tree merges partial-result streams — deliberately lower than the
    Two-Step merge core's (Fig. 14 discussion).
    """

    multiply_lanes_per_leaf: int = 8
    merge_elements_per_cycle: int = 8
    round_overhead_pe_cycles: int = 64


class FafnirSpmvEngine(SpmvEngine):
    """y = A·x on the FAFNIR reduction tree."""

    name = "fafnir-spmv"

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
        vector_size: int = 2048,
        merge_fan_in: int = 128,
        parameters: Optional[FafnirSpmvParameters] = None,
    ) -> None:
        self.config = config or FafnirConfig()
        if memory_config is None:
            memory_config = MemoryConfig().scaled_to_ranks(self.config.total_ranks)
        self.memory = MemorySystem(memory_config)
        self.vector_size = vector_size
        self.merge_fan_in = merge_fan_in
        self.parameters = parameters or FafnirSpmvParameters()

    # ------------------------------------------------------------------
    def _round_cycles_pe(self, chunk_nnz: int, chunk_cols: int) -> int:
        """PE cycles for one iteration-0 round on one chunk."""
        if chunk_nnz == 0:
            return 0
        # Matrix shard + operand slice stream in from all ranks.
        stream_bytes = chunk_nnz * STREAM_ENTRY_BYTES + chunk_cols * 4
        stream_dram = stream_read_cycles(self.memory, stream_bytes)
        stream_pe = convert_cycles(stream_dram, DRAM_CLOCK, self.config.pe_clock)
        lanes = (
            self.config.num_leaf_pes * self.parameters.multiply_lanes_per_leaf
        )
        multiply_pe = math.ceil(chunk_nnz / lanes)
        drain = self.config.tree_levels * self.config.latencies.reduce_path
        # Multiply overlaps the stream; the tree drains behind the last beat.
        return (
            max(stream_pe, multiply_pe)
            + drain
            + self.parameters.round_overhead_pe_cycles
        )

    def _merge_cycles_pe(self, plan: SpmvPlan, entries_per_stream: int) -> int:
        """PE cycles for all merge iterations."""
        if plan.merge_iterations == 0:
            return 0
        total = 0
        streams = plan.chunks
        for _ in range(plan.merge_iterations):
            after = math.ceil(streams / plan.merge_fan_in)
            # Each merge iteration re-streams every live partial entry
            # through the tree and writes the merged stream back.
            entries = streams * entries_per_stream
            read_bytes = entries * STREAM_ENTRY_BYTES
            stream_dram = modelled_stream_cycles(
                self.memory.config, 2 * read_bytes
            )
            stream_pe = convert_cycles(
                stream_dram, DRAM_CLOCK, self.config.pe_clock
            )
            merge_pe = math.ceil(
                entries / self.parameters.merge_elements_per_cycle
            )
            total += max(stream_pe, merge_pe) + self.parameters.round_overhead_pe_cycles
            streams = after
        return total

    # ------------------------------------------------------------------
    def multiply(
        self, matrix, x: np.ndarray, semiring: Semiring = PLUS_TIMES
    ) -> SpmvResult:
        x = np.asarray(x, dtype=np.float64)
        n_rows, n_cols = matrix.shape
        if x.shape != (n_cols,):
            raise ValueError(f"operand has shape {x.shape}, expected ({n_cols},)")

        plan = SpmvPlan(
            n_cols=n_cols,
            vector_size=self.vector_size,
            merge_fan_in=self.merge_fan_in,
        )
        chunks = matrix.split_columns(self.vector_size)

        y = np.full(n_rows, semiring.zero)
        step1_pe_cycles = 0
        partial_entries_max = 0
        for chunk_id, chunk in enumerate(chunks):
            start = chunk_id * self.vector_size
            x_slice = x[start : start + chunk.shape[1]]
            y = semiring.add(y, semiring.matvec(chunk, x_slice))
            step1_pe_cycles += self._round_cycles_pe(chunk.nnz, chunk.shape[1])
            touched = sum(1 for values in chunk.row_values if len(values))
            partial_entries_max = max(partial_entries_max, touched)

        merge_pe_cycles = self._merge_cycles_pe(plan, partial_entries_max)

        stats = SpmvStats(
            step1_ns=PE_CLOCK.cycles_to_ns(step1_pe_cycles),
            merge_ns=PE_CLOCK.cycles_to_ns(merge_pe_cycles),
            matrix_stream_bytes=matrix.nnz * STREAM_ENTRY_BYTES,
            intermediate_bytes=(
                plan.chunks * partial_entries_max * STREAM_ENTRY_BYTES
                if plan.merge_iterations
                else 0
            ),
            nnz=matrix.nnz,
            partial_entries=partial_entries_max,
        )
        return SpmvResult(y=y, stats=stats, plan=plan)
