"""Shared streaming cost helpers for SpMV engines.

Both FAFNIR and the Two-Step baseline stream LIL shards from all ranks (the
paper's "specify initial address and size" access type, §IV-B).  These
helpers turn a byte count into DRAM stream time on the shared substrate and
expose the effective sequential-stream bandwidth used for modelled write
traffic (the read-path simulator does not model writes explicitly).
"""

from __future__ import annotations

from typing import Sequence

from repro.memory.config import MemoryConfig
from repro.memory.mapping import StreamPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem


def stream_read_cycles(
    memory: MemorySystem, total_bytes: int, start_byte: int = 0
) -> int:
    """DRAM cycles to stream ``total_bytes`` split evenly over all ranks.

    The stream is distributed round-robin across every rank (each rank holds
    a shard of the LIL matrix) and read sequentially — the fully regular,
    row-buffer-friendly access pattern both accelerators are built around.
    """
    if total_bytes <= 0:
        return 0
    geometry = memory.config.geometry
    per_rank = -(-total_bytes // geometry.total_ranks)  # ceil division
    requests: list[ReadRequest] = []
    for rank in range(geometry.total_ranks):
        placement = StreamPlacement(geometry, rank)
        requests.extend(placement.requests_for_stream(start_byte, per_rank))
    memory.reset()
    _, stats = memory.execute(requests)
    return stats.finish_cycle


def stream_bandwidth_bytes_per_dram_cycle(config: MemoryConfig) -> float:
    """Peak sequential bandwidth: one 64 B burst per tBL cycles per channel."""
    geometry = config.geometry
    return geometry.channels * geometry.burst_bytes / config.timing.tBL


def modelled_stream_cycles(config: MemoryConfig, total_bytes: int) -> int:
    """Closed-form stream time used for write traffic (no read simulation)."""
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if total_bytes == 0:
        return 0
    bandwidth = stream_bandwidth_bytes_per_dram_cycle(config)
    return int(round(total_bytes / bandwidth))
