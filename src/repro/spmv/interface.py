"""Common interface and result types for SpMV engines."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.spmv.planner import SpmvPlan


@dataclass
class SpmvStats:
    """Timing and traffic measurements for one SpMV execution.

    ``step1_ns`` is the multiply iteration (iteration 0); ``merge_ns`` is all
    merge iterations.  The paper's Fig. 14 discussion rests on exactly this
    split: FAFNIR wins step 1 (no decompression, in-flight reduction),
    Two-Step wins the merge.
    """

    step1_ns: float = 0.0
    merge_ns: float = 0.0
    matrix_stream_bytes: int = 0
    intermediate_bytes: int = 0
    nnz: int = 0
    partial_entries: int = 0

    @property
    def total_ns(self) -> float:
        return self.step1_ns + self.merge_ns


@dataclass
class SpmvResult:
    """Output vector plus stats plus the plan that produced it."""

    y: np.ndarray
    stats: SpmvStats
    plan: SpmvPlan


class SpmvEngine(abc.ABC):
    """An engine computing y = A·x over the shared DDR4 substrate."""

    name: str = "abstract"

    @abc.abstractmethod
    def multiply(self, matrix, x: np.ndarray) -> SpmvResult:
        """Compute A·x, returning the exact result and modelled timing."""

    def oracle_check(self, matrix, x: np.ndarray, rtol: float = 1e-9) -> bool:
        result = self.multiply(matrix, x)
        return bool(np.allclose(result.y, matrix.matvec(x), rtol=rtol))
