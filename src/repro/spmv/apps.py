"""Applications built on SpMV (paper §I/§VIII: graph analytics and
scientific computing / numeric algebra).

Each application runs its inner SpMV kernels through any
:class:`~repro.spmv.interface.SpmvEngine`, so the same code compares FAFNIR
against the Two-Step baseline end to end and accumulates modelled hardware
time across iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sparse.lil import LilMatrix
from repro.spmv.interface import SpmvEngine


@dataclass
class AppResult:
    """Converged output plus accumulated modelled hardware time."""

    values: np.ndarray
    iterations: int
    total_ns: float
    converged: bool
    residuals: List[float] = field(default_factory=list)


def _transpose(matrix: LilMatrix) -> LilMatrix:
    coo = matrix.to_coo()
    from repro.sparse.coo import CooMatrix

    return LilMatrix.from_coo(
        CooMatrix(
            shape=(matrix.shape[1], matrix.shape[0]),
            rows=coo.cols,
            cols=coo.rows,
            values=coo.values,
        )
    )


def pagerank(
    adjacency: LilMatrix,
    engine: SpmvEngine,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iterations: int = 100,
) -> AppResult:
    """Power-iteration PageRank with all matrix products on ``engine``.

    The adjacency matrix is column-normalised (out-degree) and transposed so
    each iteration is one SpMV: r ← d·Mᵀr + (1−d)/n.
    """
    n_rows, n_cols = adjacency.shape
    if n_rows != n_cols:
        raise ValueError("PageRank needs a square adjacency matrix")
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")

    # Weighted out-degree: multigraph edges coalesce into weights > 1, so
    # normalising by the weight sum (not the neighbour count) is what keeps
    # the rank vector a probability distribution.
    out_degree = np.zeros(n_rows)
    for row, values in enumerate(adjacency.row_values):
        out_degree[row] = values.sum()
    transposed = _transpose(adjacency)
    # Column-normalise: entry (i, j) of Mᵀ is 1/outdeg(j) if j→i.
    normalised_rows = [
        values / np.maximum(out_degree[indices], 1.0)
        for indices, values in zip(transposed.row_indices, transposed.row_values)
    ]
    matrix = LilMatrix(transposed.shape, transposed.row_indices, normalised_rows)

    rank = np.full(n_rows, 1.0 / n_rows)
    dangling = out_degree == 0
    total_ns = 0.0
    residuals: List[float] = []
    for iteration in range(1, max_iterations + 1):
        result = engine.multiply(matrix, rank)
        total_ns += result.stats.total_ns
        redistributed = damping * rank[dangling].sum() / n_rows
        updated = damping * result.y + (1.0 - damping) / n_rows + redistributed
        residual = float(np.abs(updated - rank).sum())
        residuals.append(residual)
        rank = updated
        if residual < tolerance:
            return AppResult(rank, iteration, total_ns, True, residuals)
    return AppResult(rank, max_iterations, total_ns, False, residuals)


def bfs(
    adjacency: LilMatrix,
    engine: SpmvEngine,
    source: int,
    max_levels: Optional[int] = None,
) -> AppResult:
    """Level-synchronous BFS as repeated SpMV over the Boolean semiring.

    Frontier expansion y = Aᵀ·f runs on the engine; the host applies the
    semiring collapse (non-zero → 1) and visited masking, mirroring how a
    host drives FAFNIR kernels (§IV-B software support).
    """
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("BFS needs a square adjacency matrix")
    if not 0 <= source < n:
        raise ValueError("source vertex out of range")
    matrix = _transpose(adjacency)

    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.zeros(n)
    frontier[source] = 1.0
    total_ns = 0.0
    level = 0
    limit = max_levels if max_levels is not None else n
    while frontier.any() and level < limit:
        result = engine.multiply(matrix, frontier)
        total_ns += result.stats.total_ns
        level += 1
        reached = (result.y != 0) & (levels < 0)
        levels[reached] = level
        frontier = np.zeros(n)
        frontier[reached] = 1.0
    return AppResult(
        values=levels.astype(np.float64),
        iterations=level,
        total_ns=total_ns,
        converged=not frontier.any(),
    )


def sssp(
    adjacency: LilMatrix,
    engine: SpmvEngine,
    source: int,
    max_iterations: Optional[int] = None,
) -> AppResult:
    """Single-source shortest paths via Bellman-Ford on the tropical
    semiring (min-plus).

    Each relaxation step is one generalized SpMV on the engine:
    d′[v] = min(d[v], min_u (d[u] + w(u→v))).  Edge weights are the stored
    values of the adjacency matrix; missing edges are the semiring's
    additive identity (+∞).  Unreached vertices keep distance +∞.
    """
    from repro.spmv.semiring import MIN_PLUS

    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("SSSP needs a square adjacency matrix")
    if not 0 <= source < n:
        raise ValueError("source vertex out of range")
    # Rows of the relaxation operator index destinations; entry (v, u)
    # carries w(u→v), so transpose the (source-row) adjacency.
    matrix = _transpose(adjacency)

    distances = np.full(n, np.inf)
    distances[source] = 0.0
    total_ns = 0.0
    # n−1 relaxations suffice; one more pass confirms the fixpoint.
    limit = max_iterations if max_iterations is not None else n
    iterations = 0
    converged = False
    for _ in range(max(1, limit)):
        result = engine.multiply(matrix, distances, semiring=MIN_PLUS)
        total_ns += result.stats.total_ns
        iterations += 1
        relaxed = np.minimum(distances, result.y)
        if np.array_equal(relaxed, distances):
            converged = True
            break
        distances = relaxed
    return AppResult(
        values=distances,
        iterations=iterations,
        total_ns=total_ns,
        converged=converged,
    )


def jacobi_solve(
    matrix: LilMatrix,
    rhs: np.ndarray,
    engine: SpmvEngine,
    tolerance: float = 1e-8,
    max_iterations: int = 200,
) -> AppResult:
    """Jacobi iteration for A·x = b — the matrix-inversion-style scientific
    kernel the paper cites (§VIII: "numeric algebra such as matrix
    inversion and differential-equation solvers").

    Splitting A = D + R, each iteration is x ← D⁻¹(b − R·x) with the R·x
    product on the engine.  Requires a diagonally dominant A to converge.
    """
    n_rows, n_cols = matrix.shape
    if n_rows != n_cols:
        raise ValueError("Jacobi needs a square matrix")
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.shape != (n_rows,):
        raise ValueError("right-hand side has the wrong shape")

    diagonal = np.zeros(n_rows)
    off_indices: List[np.ndarray] = []
    off_values: List[np.ndarray] = []
    for row, (indices, values) in enumerate(
        zip(matrix.row_indices, matrix.row_values)
    ):
        mask = indices == row
        if mask.any():
            diagonal[row] = values[mask].sum()
        off_indices.append(indices[~mask])
        off_values.append(values[~mask])
    if np.any(diagonal == 0):
        raise ValueError("matrix has a zero diagonal entry")
    remainder = LilMatrix(matrix.shape, off_indices, off_values)

    x = np.zeros(n_rows)
    total_ns = 0.0
    residuals: List[float] = []
    for iteration in range(1, max_iterations + 1):
        result = engine.multiply(remainder, x)
        total_ns += result.stats.total_ns
        updated = (rhs - result.y) / diagonal
        residual = float(np.linalg.norm(matrix.matvec(updated) - rhs))
        residuals.append(residual)
        x = updated
        if residual < tolerance:
            return AppResult(x, iteration, total_ns, True, residuals)
    return AppResult(x, max_iterations, total_ns, False, residuals)
