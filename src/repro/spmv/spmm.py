"""Sparse-matrix × dense-matrix (SpMM) on a SpMV engine.

PageRank over many personalization vectors, block Krylov methods, and GNN
feature propagation all need y = A·X for a dense block X.  On FAFNIR the
matrix stream is the expensive part, and it is *shared* across the block's
columns: the stream is fetched once per chunk while the leaf multipliers
cycle through the block columns.  This module runs SpMM column-by-column
functionally but models the shared-stream cost instead of billing the full
stream per column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.spmv.interface import SpmvEngine, SpmvStats


@dataclass
class SpmmResult:
    """Dense result block plus timing for the whole multiply."""

    y: np.ndarray
    stats: SpmvStats
    columns: int
    naive_ns: float

    @property
    def stream_sharing_speedup(self) -> float:
        """How much sharing the matrix stream saved vs per-column SpMV."""
        if self.stats.total_ns == 0:
            return 1.0
        return self.naive_ns / self.stats.total_ns


def spmm(engine: SpmvEngine, matrix, block: np.ndarray) -> SpmmResult:
    """Compute Y = A·X with the matrix stream shared across X's columns.

    Cost model: the stream-bound share of step 1 is paid once; the
    compute-bound share and the merge iterations are paid per column (each
    column produces its own partial streams).
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2:
        raise ValueError("block operand must be 2-D")
    n_rows, n_cols = matrix.shape
    if block.shape[0] != n_cols:
        raise ValueError(
            f"block has {block.shape[0]} rows, matrix expects {n_cols}"
        )
    columns = block.shape[1]
    if columns == 0:
        raise ValueError("block must have at least one column")

    outputs: List[np.ndarray] = []
    per_column: List[SpmvStats] = []
    for column in range(columns):
        result = engine.multiply(matrix, block[:, column])
        outputs.append(result.y)
        per_column.append(result.stats)

    naive_ns = sum(stats.total_ns for stats in per_column)
    # Shared stream: one column pays full step 1; the rest ride along and
    # pay only their merge iterations (per-column partial results).
    first = per_column[0]
    shared_step1 = first.step1_ns
    total_merge = sum(stats.merge_ns for stats in per_column)
    stats = SpmvStats(
        step1_ns=shared_step1,
        merge_ns=total_merge,
        matrix_stream_bytes=first.matrix_stream_bytes,
        intermediate_bytes=sum(s.intermediate_bytes for s in per_column),
        nnz=first.nnz,
        partial_entries=first.partial_entries,
    )
    return SpmmResult(
        y=np.column_stack(outputs),
        stats=stats,
        columns=columns,
        naive_ns=naive_ns,
    )
