"""Krylov and eigen solvers on the FAFNIR SpMV engine (paper §VIII).

Beyond Jacobi, the "numeric algebra such as matrix inversion and
differential-equation solvers" the paper targets is dominated in practice by
Krylov methods; this module provides conjugate gradient (for SPD systems
like the 2-D Laplacian) and power iteration (dominant eigenpair, the core of
spectral methods) with every matrix-vector product running on a pluggable
:class:`~repro.spmv.interface.SpmvEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.sparse.lil import LilMatrix
from repro.spmv.apps import AppResult
from repro.spmv.interface import SpmvEngine


def conjugate_gradient(
    matrix: LilMatrix,
    rhs: np.ndarray,
    engine: SpmvEngine,
    tolerance: float = 1e-8,
    max_iterations: int = 500,
) -> AppResult:
    """Solve A·x = b for symmetric positive-definite A.

    One SpMV per iteration on the engine; all vector updates at the host
    (they are dense AXPYs, not sparse gathering).
    """
    n_rows, n_cols = matrix.shape
    if n_rows != n_cols:
        raise ValueError("conjugate gradient needs a square matrix")
    rhs = np.asarray(rhs, dtype=np.float64)
    if rhs.shape != (n_rows,):
        raise ValueError("right-hand side has the wrong shape")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    x = np.zeros(n_rows)
    residual = rhs.copy()
    direction = residual.copy()
    residual_norm_sq = float(residual @ residual)
    total_ns = 0.0
    residuals: List[float] = []

    for iteration in range(1, max_iterations + 1):
        product = engine.multiply(matrix, direction)
        total_ns += product.stats.total_ns
        curvature = float(direction @ product.y)
        if curvature <= 0:
            raise ValueError(
                "matrix is not positive definite (non-positive curvature "
                f"at iteration {iteration})"
            )
        step = residual_norm_sq / curvature
        x = x + step * direction
        residual = residual - step * product.y
        new_norm_sq = float(residual @ residual)
        residuals.append(float(np.sqrt(new_norm_sq)))
        if residuals[-1] < tolerance:
            return AppResult(x, iteration, total_ns, True, residuals)
        direction = residual + (new_norm_sq / residual_norm_sq) * direction
        residual_norm_sq = new_norm_sq
    return AppResult(x, max_iterations, total_ns, False, residuals)


@dataclass
class EigenResult:
    """Dominant eigenpair estimate plus accumulated hardware time."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    total_ns: float
    converged: bool
    history: List[float] = field(default_factory=list)


def power_iteration(
    matrix: LilMatrix,
    engine: SpmvEngine,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    seed: int = 0,
) -> EigenResult:
    """Dominant eigenvalue/eigenvector of a square matrix by power iteration."""
    n_rows, n_cols = matrix.shape
    if n_rows != n_cols:
        raise ValueError("power iteration needs a square matrix")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")

    rng = np.random.default_rng(seed)
    vector = rng.normal(size=n_rows)
    vector /= np.linalg.norm(vector)
    eigenvalue = 0.0
    total_ns = 0.0
    history: List[float] = []

    for iteration in range(1, max_iterations + 1):
        product = engine.multiply(matrix, vector)
        total_ns += product.stats.total_ns
        norm = float(np.linalg.norm(product.y))
        if norm == 0.0:
            raise ValueError("matrix annihilated the iterate (nilpotent?)")
        new_vector = product.y / norm
        new_eigenvalue = float(new_vector @ engine.multiply(matrix, new_vector).y)
        history.append(new_eigenvalue)
        if abs(new_eigenvalue - eigenvalue) < tolerance:
            return EigenResult(
                eigenvalue=new_eigenvalue,
                eigenvector=new_vector,
                iterations=iteration,
                total_ns=total_ns,
                converged=True,
                history=history,
            )
        eigenvalue = new_eigenvalue
        vector = new_vector
    return EigenResult(
        eigenvalue=eigenvalue,
        eigenvector=vector,
        iterations=max_iterations,
        total_ns=total_ns,
        converged=False,
        history=history,
    )
