"""Rank-level hot-index cache: the shared model behind baseline and tier.

RecNMP (PAPERS.md) attacks the same redundant-gather problem as FAFNIR
from the other side: instead of deduplicating a batch before it reaches
memory, it deploys a small cache per rank that short-circuits DRAM reads
for *hot* embedding vectors (128 KB per rank buys at most a ~50 % hit
rate in the paper).  The two mechanisms compose — dedup removes
intra-batch redundancy, the cache removes cross-batch popularity
redundancy — which is exactly the ablation ``repro.cli cache`` and
``benchmarks/bench_ablation_cache.py`` measure.

This module is the single source of truth for that cache model:

* :class:`CacheStats` — hit/miss accounting shared by every consumer;
* :class:`HotIndexCache` — one set-associative cache keyed by vector id,
  with a configurable size / line / associativity / replacement policy
  and optional *pinned* ids (placement-optimizer-selected residents that
  never age out);
* :class:`HotTierConfig` — a frozen, picklable description of a
  per-rank tier, safe to ship to :class:`~repro.core.sharding`
  worker processes;
* :class:`HotIndexTier` — the per-rank cache array a
  :class:`~repro.memory.system.MemorySystem` consults before its channel
  controllers.

``baselines/cache.py`` (the RecNMP baseline model) delegates to
:class:`HotIndexCache`, so the baseline's numbers and the FAFNIR tier
can never drift apart.

The tier is a *timing* model only: a hit replaces a DRAM read's modeled
latency with ``hit_latency_cycles`` and removes it from the access
stats, but the vector's value still comes from the engine's source —
functional results are byte-identical with the tier on or off (the
contract ``tests/integration/test_cache_differential.py`` enforces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Replacement policies understood by :class:`HotIndexCache`.
POLICY_LRU = "lru"
POLICY_FIFO = "fifo"
POLICIES = (POLICY_LRU, POLICY_FIFO)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (or an aggregate of many).

    ``hit_rate`` is defined as exactly ``0.0`` for an untouched cache
    (never a division error or a NaN), is always a plain Python float,
    and is clamped to ``[0.0, 1.0]`` so aggregation arithmetic upstream
    can never push it out of range.
    """

    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        if self.hits < 0 or self.misses < 0:
            raise ValueError("hits and misses must be non-negative")

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        accesses = self.accesses
        if accesses <= 0:
            return 0.0
        return min(1.0, float(self.hits) / float(accesses))

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits + other.hits, misses=self.misses + other.misses
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
        }


class HotIndexCache:
    """One set-associative cache of hot vector ids.

    Capacity is ``size_bytes // line_bytes`` lines (one whole vector per
    line, as RecNMP caches whole embeddings); a line's set is selected by
    ``(vector_id // set_stride) % num_sets``.  ``set_stride`` defaults to
    1 (the classic ``id % num_sets`` indexing the RecNMP baseline uses);
    a rank-local cache behind an interleaved placement must pass the
    rank count instead, because every id routed to one rank shares the
    same ``id % num_ranks`` residue — indexing raw ids there would fold
    the whole rank into a single set.  ``policy`` picks the eviction
    order within a set: ``"lru"`` (hits refresh recency) or ``"fifo"``
    (insertion order only).  ``pinned`` ids are preloaded residents held
    outside the sets — they always hit and are never evicted, modeling
    the placement optimizer writing its chosen residents into the rank's
    scratchpad before the run.
    """

    def __init__(
        self,
        size_bytes: int = 128 * 1024,
        line_bytes: int = 512,
        ways: int = 8,
        policy: str = POLICY_LRU,
        pinned: Tuple[int, ...] = (),
        set_stride: int = 1,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or ways <= 0 or set_stride <= 0:
            raise ValueError("cache parameters must be positive")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown replacement policy {policy!r}; choose from {POLICIES}"
            )
        capacity = size_bytes // line_bytes
        if capacity < ways:
            raise ValueError(
                f"cache of {size_bytes} B holds {capacity} lines, fewer "
                f"than {ways} ways"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.num_sets = max(1, capacity // ways)
        self.ways = ways
        self.policy = policy
        self.set_stride = set_stride
        self.pinned = frozenset(pinned)
        if any(vector_id < 0 for vector_id in self.pinned):
            raise ValueError("pinned ids must be non-negative")
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def access(self, vector_id: int) -> bool:
        """Touch a vector id; returns True on hit.  Misses allocate."""
        if vector_id < 0:
            raise ValueError("vector_id must be non-negative")
        if vector_id in self.pinned:
            self.stats.hits += 1
            return True
        index = (vector_id // self.set_stride) % self.num_sets
        entries = self._sets.setdefault(index, [])
        if vector_id in entries:
            if self.policy == POLICY_LRU:
                entries.remove(vector_id)
                entries.append(vector_id)  # most-recently-used at the tail
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        entries.append(vector_id)
        if len(entries) > self.ways:
            entries.pop(0)
        return False

    def contains(self, vector_id: int) -> bool:
        """Residency probe without touching stats or recency."""
        if vector_id in self.pinned:
            return True
        index = (vector_id // self.set_stride) % self.num_sets
        return vector_id in self._sets.get(index, ())

    def reset(self) -> None:
        """Drop all cached lines (pinned residents stay) and the stats."""
        self._sets.clear()
        self.stats = CacheStats()


@dataclass(frozen=True)
class HotTierConfig:
    """Frozen description of a rank-level hot-index tier.

    Plain picklable data: engines, the serving simulator, and
    :class:`~repro.core.sharding.ShardedRunner` workers all receive this
    *description* and build their own stateful :class:`HotIndexTier` from
    it, so cache state never has to cross a process boundary.

    Attributes:
        size_bytes: per-rank capacity (RecNMP's reference point is
            128 KB/rank); ranks listed in ``per_rank_size_bytes`` override
            it, and a 0 there disables that rank's cache entirely.
        line_bytes: bytes per cached line — one whole vector at the
            paper's 512 B reference.
        ways: set associativity (clamped per rank when a small override
            budget holds fewer lines than ways).
        policy: ``"lru"`` or ``"fifo"`` eviction within a set.
        hit_latency_cycles: modeled DRAM-clock latency of a hit — the
            near-rank SRAM lookup replacing the full DRAM access.
        per_rank_size_bytes: optional heterogeneous per-rank budgets
            (the placement optimizer's output), length == rank count.
        pinned: optional per-rank tuples of preloaded resident ids,
            length == rank count when given.
    """

    size_bytes: int = 128 * 1024
    line_bytes: int = 512
    ways: int = 8
    policy: str = POLICY_LRU
    hit_latency_cycles: int = 4
    per_rank_size_bytes: Optional[Tuple[int, ...]] = None
    pinned: Optional[Tuple[Tuple[int, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache parameters must be positive")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown replacement policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )
        if self.hit_latency_cycles < 0:
            raise ValueError("hit_latency_cycles must be non-negative")

    def rank_size_bytes(self, rank: int) -> int:
        if self.per_rank_size_bytes is not None:
            return self.per_rank_size_bytes[rank]
        return self.size_bytes

    def rank_pinned(self, rank: int) -> Tuple[int, ...]:
        if self.pinned is not None:
            return self.pinned[rank]
        return ()


class HotIndexTier:
    """One :class:`HotIndexCache` per rank, built from a config.

    A rank whose configured budget holds zero lines carries no cache —
    its reads always go to DRAM and are not counted as tier accesses.
    Budgets smaller than ``ways`` lines clamp the associativity instead
    of erroring, so a placement optimizer can hand out arbitrarily
    skewed byte allocations.

    Per-rank caches index sets with ``set_stride = num_ranks``: the
    memory system routes ids to ranks by ``id % num_ranks``, so every id
    one rank ever sees shares the same low residue, and indexing raw ids
    (stride 1) would collapse a rank's whole id stream into one set —
    ``ways`` lines of effective capacity no matter the budget.  Striding
    by the rank count indexes on the rank-local address instead, exactly
    like a real per-rank cache indexing rank-local DRAM addresses.
    """

    def __init__(self, config: HotTierConfig, num_ranks: int) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if (
            config.per_rank_size_bytes is not None
            and len(config.per_rank_size_bytes) != num_ranks
        ):
            raise ValueError(
                f"per_rank_size_bytes has {len(config.per_rank_size_bytes)} "
                f"entries for {num_ranks} ranks"
            )
        if config.pinned is not None and len(config.pinned) != num_ranks:
            raise ValueError(
                f"pinned has {len(config.pinned)} entries for "
                f"{num_ranks} ranks"
            )
        self.config = config
        self.num_ranks = num_ranks
        self._caches: List[Optional[HotIndexCache]] = []
        for rank in range(num_ranks):
            size = config.rank_size_bytes(rank)
            lines = size // config.line_bytes
            if lines <= 0:
                self._caches.append(None)
                continue
            self._caches.append(
                HotIndexCache(
                    size_bytes=size,
                    line_bytes=config.line_bytes,
                    ways=min(config.ways, lines),
                    policy=config.policy,
                    pinned=config.rank_pinned(rank),
                    set_stride=num_ranks,
                )
            )

    @property
    def hit_latency_cycles(self) -> int:
        return self.config.hit_latency_cycles

    def cache_for(self, rank: int) -> Optional[HotIndexCache]:
        return self._caches[rank]

    def access(self, rank: int, vector_id: int) -> bool:
        """Touch ``vector_id`` on ``rank``; False when the rank is uncached."""
        cache = self._caches[rank]
        if cache is None:
            return False
        return cache.access(vector_id)

    def reset(self) -> None:
        for cache in self._caches:
            if cache is not None:
                cache.reset()

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._caches:
            if cache is not None:
                total = total.merged_with(cache.stats)
        return total

    def per_rank_stats(self) -> List[CacheStats]:
        return [
            CacheStats() if cache is None else cache.stats
            for cache in self._caches
        ]
