"""Popularity profiling and hot-table placement (MicroRec's framing).

The hot-index tier (:mod:`repro.tiering.cache`) only pays off where the
traffic is skewed, and skew is never uniform across ranks: with the
paper's ``global_id = table + num_tables * row`` encoding each rank
serves one table, and tables differ wildly in heat under production
(Zipfian) loads.  MicroRec (PAPERS.md) turns that observation into a
deployment knob — *place* hot tables well before the run.  This module
implements the profiling and the optimizer:

* :class:`AccessProfile` — exact per-id access counts from recorded
  workload traces (offline profiling);
* :class:`DecayingCountSketch` — a bounded-memory count-min sketch with
  exponential decay plus a top-K candidate list (online profiling that
  tracks drifting popularity without storing the id universe);
* :class:`PlacementOptimizer` — turns either profile into a
  :class:`PlacementPlan`: per-rank cache-byte budgets (heat-proportional,
  quantized to cache lines), per-rank pinned resident ids, and a
  rank permutation steering hot tables away from slow ranks;
* :class:`PermutedRankPlacement` — executes the permutation on top of
  any base :class:`~repro.memory.mapping.VectorPlacement`.

Placement is a *pre-run configuration* choice: two runs with the same
plan are byte-identical with the tier on or off, while runs under
different plans legitimately differ (they route vectors through
different tree paths).  The differential suite therefore always compares
cached vs uncached at a fixed plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.memory.mapping import VectorPlacement
from repro.memory.request import ReadRequest
from repro.obs.events import PLACEMENT_DECIDED, TraceEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.tiering.cache import HotTierConfig

Batch = Sequence[Sequence[int]]

_SKETCH_PRIME = (1 << 61) - 1  # Mersenne prime: cheap universal hashing


@dataclass
class AccessProfile:
    """Exact per-id access counts from workload traces (offline mode)."""

    counts: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_batches(cls, batches: Iterable[Batch]) -> "AccessProfile":
        profile = cls()
        for batch in batches:
            profile.observe(batch)
        return profile

    def observe(self, batch: Batch) -> None:
        counts = self.counts
        for query in batch:
            for index in query:
                counts[index] = counts.get(index, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def rank_heat(
        self,
        num_ranks: int,
        home_rank: Optional[Callable[[int], int]] = None,
    ) -> List[float]:
        """Access mass per home rank (``id % num_ranks`` by default)."""
        heat = [0.0] * num_ranks
        for index, count in self.counts.items():
            rank = home_rank(index) if home_rank is not None else index % num_ranks
            heat[rank] += count
        return heat

    def table_heat(self, num_tables: int) -> List[float]:
        """Access mass per table under the ``table = id % num_tables`` encoding."""
        heat = [0.0] * num_tables
        for index, count in self.counts.items():
            heat[index % num_tables] += count
        return heat

    def hottest_ids(self, k: int) -> List[int]:
        """The ``k`` most-accessed ids, hottest first (ties by id)."""
        ordered = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return [index for index, _ in ordered[:k]]


class DecayingCountSketch:
    """Count-min sketch with exponential decay and a top-K candidate list.

    Online profiling for drifting workloads: every ``decay_every``
    observations all counters are multiplied by ``decay``, so stale heat
    fades at a known half-life instead of accumulating forever.  Depth
    rows of width counters bound memory regardless of the id universe;
    estimates are the row minimum (classic count-min, overestimates
    only).  A bounded candidate dictionary tracks the current top ids so
    :meth:`hottest_ids` needs no universe scan, and exact (decayed)
    per-rank / per-table heat accumulators support the optimizer's
    budget split — ranks and tables are few even when ids are not.
    """

    def __init__(
        self,
        num_ranks: int,
        num_tables: Optional[int] = None,
        width: int = 2048,
        depth: int = 4,
        decay: float = 0.5,
        decay_every: int = 4096,
        max_candidates: int = 512,
        seed: int = 0,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if decay_every <= 0 or max_candidates <= 0:
            raise ValueError("decay_every and max_candidates must be positive")
        self.num_ranks = num_ranks
        self.num_tables = num_tables
        self.width = width
        self.depth = depth
        self.decay = decay
        self.decay_every = decay_every
        self.max_candidates = max_candidates
        rng = np.random.default_rng(seed ^ 0x7157E12)
        # Odd multipliers + offsets < prime: pairwise-independent row hashes.
        self._salts = [
            int(value) | 1
            for value in rng.integers(1, _SKETCH_PRIME, size=depth)
        ]
        self._offsets = [
            int(value) for value in rng.integers(0, _SKETCH_PRIME, size=depth)
        ]
        self._rows = np.zeros((depth, width), dtype=np.float64)
        self._rank_heat = np.zeros(num_ranks, dtype=np.float64)
        self._table_heat = (
            np.zeros(num_tables, dtype=np.float64)
            if num_tables is not None
            else None
        )
        self._candidates: Dict[int, float] = {}
        self._ticks = 0

    def _positions(self, key: int) -> List[int]:
        return [
            ((key * self._salts[row] + self._offsets[row]) % _SKETCH_PRIME)
            % self.width
            for row in range(self.depth)
        ]

    def add(self, key: int, amount: float = 1.0) -> float:
        """Record one access; returns the post-update estimate for ``key``."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        positions = self._positions(key)
        for row, position in enumerate(positions):
            self._rows[row, position] += amount
        estimate = min(
            float(self._rows[row, position])
            for row, position in enumerate(positions)
        )
        self._rank_heat[key % self.num_ranks] += amount
        if self._table_heat is not None:
            self._table_heat[key % self.num_tables] += amount
        self._admit(key, estimate)
        self._ticks += 1
        if self._ticks % self.decay_every == 0:
            self._apply_decay()
        return estimate

    def observe(self, batch: Batch) -> None:
        for query in batch:
            for index in query:
                self.add(index)

    def _admit(self, key: int, estimate: float) -> None:
        candidates = self._candidates
        if key in candidates or len(candidates) < self.max_candidates:
            candidates[key] = estimate
            return
        coldest = min(candidates.items(), key=lambda item: (item[1], -item[0]))
        if estimate > coldest[1]:
            del candidates[coldest[0]]
            candidates[key] = estimate

    def _apply_decay(self) -> None:
        self._rows *= self.decay
        self._rank_heat *= self.decay
        if self._table_heat is not None:
            self._table_heat *= self.decay
        for key in list(self._candidates):
            self._candidates[key] *= self.decay

    def estimate(self, key: int) -> float:
        """Current (decayed) access estimate; an upper bound, never under."""
        return min(
            float(self._rows[row, position])
            for row, position in enumerate(self._positions(key))
        )

    def rank_heat(self, num_ranks: int) -> List[float]:
        if num_ranks != self.num_ranks:
            raise ValueError(
                f"sketch profiles {self.num_ranks} ranks, asked for {num_ranks}"
            )
        return [float(value) for value in self._rank_heat]

    def table_heat(self, num_tables: int) -> List[float]:
        if self._table_heat is None or num_tables != self.num_tables:
            raise ValueError(
                f"sketch profiles {self.num_tables} tables, asked for "
                f"{num_tables}"
            )
        return [float(value) for value in self._table_heat]

    def hottest_ids(self, k: int) -> List[int]:
        ordered = sorted(
            self._candidates.items(), key=lambda item: (-item[1], item[0])
        )
        return [index for index, _ in ordered[:k]]


@dataclass(frozen=True)
class PermutedRankPlacement:
    """A base placement with its home ranks permuted (hot → fast).

    ``permutation[logical]`` is the physical rank that stores what the
    base placement would home on ``logical``.  Per-rank slot layout is
    rank-symmetric in every shipped placement, so rewriting the rank
    field of each split request is exact.
    """

    base: VectorPlacement
    permutation: Tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.permutation) != list(range(len(self.permutation))):
            raise ValueError(
                "permutation must be a permutation of range(num_ranks)"
            )

    def home_rank(self, vector_id: int) -> Optional[int]:
        home = self.base.home_rank(vector_id)
        return None if home is None else self.permutation[home]

    def requests_for(
        self, vector_id: int, issue_cycle: int = 0
    ) -> List[ReadRequest]:
        return [
            replace(request, rank=self.permutation[request.rank])
            for request in self.base.requests_for(vector_id, issue_cycle)
        ]


@dataclass(frozen=True)
class PlacementPlan:
    """One optimizer decision, ready to configure a run.

    ``rank_permutation`` maps logical home ranks to physical ranks
    (identity when no speed information was given); budgets and pinned
    ids are indexed by *physical* rank, matching the tier the memory
    system consults.  ``decisions`` carries one record per physical rank
    for reporting — the same payloads the ``placement_decided`` trace
    events ship.
    """

    rank_permutation: Tuple[int, ...]
    per_rank_size_bytes: Tuple[int, ...]
    pinned: Tuple[Tuple[int, ...], ...]
    decisions: Tuple[Dict[str, object], ...] = ()

    @property
    def num_ranks(self) -> int:
        return len(self.rank_permutation)

    @property
    def total_budget_bytes(self) -> int:
        return sum(self.per_rank_size_bytes)

    def tier_config(self, base: HotTierConfig) -> HotTierConfig:
        """The base tier config specialized to this plan's allocation."""
        return replace(
            base,
            per_rank_size_bytes=self.per_rank_size_bytes,
            pinned=self.pinned if any(self.pinned) else None,
        )

    def placement_for(self, base: VectorPlacement) -> VectorPlacement:
        """The base data placement with this plan's permutation applied."""
        if self.rank_permutation == tuple(range(self.num_ranks)):
            return base
        return PermutedRankPlacement(base, self.rank_permutation)


class PlacementOptimizer:
    """Turns an access profile into per-rank budgets, pins, and a wiring.

    Heat-proportional budgeting: each rank's share of the tier's total
    byte budget follows its share of the profiled access mass, quantized
    down to whole cache lines, with the remainder handed out one line at
    a time in heat order (hottest first).  Optionally the hottest ids of
    each rank are *pinned* — preloaded residents the tier never evicts —
    and, when a set of slow ranks is known (e.g. a
    :class:`~repro.faults.plan.FaultPlan`'s degraded ranks), hot logical
    ranks are permuted onto the fast physical ranks.
    """

    def __init__(
        self,
        profile,
        num_ranks: int,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.profile = profile
        self.num_ranks = num_ranks
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def plan(
        self,
        base: Optional[HotTierConfig] = None,
        total_budget_bytes: Optional[int] = None,
        slow_ranks: Iterable[int] = (),
        pinned_per_rank: int = 0,
    ) -> PlacementPlan:
        base = base if base is not None else HotTierConfig()
        num_ranks = self.num_ranks
        line = base.line_bytes
        budget = (
            total_budget_bytes
            if total_budget_bytes is not None
            else base.size_bytes * num_ranks
        )
        if budget < 0:
            raise ValueError("total_budget_bytes must be non-negative")
        slow = frozenset(slow_ranks)
        if any(not 0 <= rank < num_ranks for rank in slow):
            raise ValueError("slow_ranks out of range")

        heat = list(self.profile.rank_heat(num_ranks))
        total_heat = sum(heat)
        heat_order = sorted(range(num_ranks), key=lambda r: (-heat[r], r))

        # Rank permutation: hottest logical ranks onto fast physical ranks.
        if slow:
            fast_first = sorted(
                range(num_ranks), key=lambda r: (r in slow, r)
            )
            permutation = [0] * num_ranks
            for logical, physical in zip(heat_order, fast_first):
                permutation[logical] = physical
        else:
            permutation = list(range(num_ranks))

        # Heat-proportional line budgets for each logical rank's cache.
        total_lines = budget // line
        lines = [0] * num_ranks
        if total_heat > 0 and total_lines > 0:
            assigned = 0
            for rank in range(num_ranks):
                lines[rank] = int(total_lines * heat[rank] / total_heat)
                assigned += lines[rank]
            leftovers = total_lines - assigned
            position = 0
            while leftovers > 0 and total_heat > 0:
                rank = heat_order[position % num_ranks]
                if heat[rank] > 0:
                    lines[rank] += 1
                    leftovers -= 1
                position += 1
                if position >= num_ranks and all(
                    heat[r] <= 0 for r in range(num_ranks)
                ):
                    break
        elif total_lines > 0:
            # No profile mass at all: fall back to an even split.
            for rank in range(num_ranks):
                lines[rank] = total_lines // num_ranks

        # Pinned residents: each logical rank's hottest ids, preloaded.
        pinned_logical: List[Tuple[int, ...]] = [() for _ in range(num_ranks)]
        if pinned_per_rank > 0:
            per_rank: Dict[int, List[int]] = {}
            for index in self.profile.hottest_ids(
                pinned_per_rank * num_ranks * 4
            ):
                rank = index % num_ranks
                bucket = per_rank.setdefault(rank, [])
                if len(bucket) < pinned_per_rank:
                    bucket.append(index)
            for rank, bucket in per_rank.items():
                pinned_logical[rank] = tuple(bucket)

        # Express budgets/pins by physical rank (what the tier indexes).
        per_rank_bytes = [0] * num_ranks
        pinned_physical: List[Tuple[int, ...]] = [() for _ in range(num_ranks)]
        decisions: List[Dict[str, object]] = []
        for logical in range(num_ranks):
            physical = permutation[logical]
            per_rank_bytes[physical] = lines[logical] * line
            pinned_physical[physical] = pinned_logical[logical]
            decisions.append(
                {
                    "logical_rank": logical,
                    "physical_rank": physical,
                    "heat": heat[logical],
                    "size_bytes": per_rank_bytes[physical],
                    "pinned": len(pinned_logical[logical]),
                    "slow": physical in slow,
                }
            )
        if self.tracer.enabled:
            for decision in decisions:
                self.tracer.emit(
                    TraceEvent(
                        PLACEMENT_DECIDED,
                        cycle=0,
                        rank=int(decision["physical_rank"]),  # type: ignore[arg-type]
                        args=dict(decision),
                    )
                )
        return PlacementPlan(
            rank_permutation=tuple(permutation),
            per_rank_size_bytes=tuple(per_rank_bytes),
            pinned=tuple(pinned_physical),
            decisions=tuple(decisions),
        )
