"""Hot-index tiering: rank-level caching plus popularity-aware placement.

The opt-in tier at the leaf/rank boundary (RecNMP's rank cache composed
with FAFNIR's dedup) and the MicroRec-style placement optimizer that
decides, before a run, how much cache each rank deserves and which
tables live on the fast ranks.
"""

from repro.tiering.cache import (
    POLICIES,
    POLICY_FIFO,
    POLICY_LRU,
    CacheStats,
    HotIndexCache,
    HotIndexTier,
    HotTierConfig,
)
from repro.tiering.placement import (
    AccessProfile,
    DecayingCountSketch,
    PermutedRankPlacement,
    PlacementOptimizer,
    PlacementPlan,
)

__all__ = [
    "POLICIES",
    "POLICY_FIFO",
    "POLICY_LRU",
    "CacheStats",
    "HotIndexCache",
    "HotIndexTier",
    "HotTierConfig",
    "AccessProfile",
    "DecayingCountSketch",
    "PermutedRankPlacement",
    "PlacementOptimizer",
    "PlacementPlan",
]
