"""Unique-index statistics (paper Fig. 3 and Fig. 15).

Fig. 3 plots the percentage of unique indices in batches of queries; Fig. 15
shows the memory accesses remaining after FAFNIR's host-side deduplication,
with per-leaf access counts always below the batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.batch import plan_batch
from repro.workloads.embedding import EmbeddingTableSet, QueryGenerator


@dataclass
class UniqueIndexStats:
    """Aggregate sharing statistics for a set of batches."""

    batch_size: int
    mean_unique_fraction: float
    mean_savings: float
    samples: int

    @property
    def mean_unique_percent(self) -> float:
        return 100.0 * self.mean_unique_fraction

    @property
    def mean_savings_percent(self) -> float:
        return 100.0 * self.mean_savings


def unique_fraction_stats(
    tables: EmbeddingTableSet,
    batch_sizes: Sequence[int],
    seeds: Sequence[int] = range(8),
    query_len: int = 16,
) -> List[UniqueIndexStats]:
    """Fig. 3's series: unique-index percentage vs batch size."""
    stats: List[UniqueIndexStats] = []
    for batch_size in batch_sizes:
        fractions = []
        for seed in seeds:
            generator = QueryGenerator.paper_calibrated(
                tables, seed=seed, query_len=query_len
            )
            plan = plan_batch(generator.batch(batch_size))
            fractions.append(plan.unique_fraction)
        mean_fraction = float(np.mean(fractions))
        stats.append(
            UniqueIndexStats(
                batch_size=batch_size,
                mean_unique_fraction=mean_fraction,
                mean_savings=1.0 - mean_fraction,
                samples=len(fractions),
            )
        )
    return stats


def per_rank_access_counts(
    queries: Sequence[Sequence[int]], total_ranks: int = 32
) -> Dict[int, int]:
    """Unique accesses per rank for one batch (Fig. 15's per-leaf series).

    Uses the reference placement (vector id mod rank count).
    """
    unique = {index for query in queries for index in query}
    counts: Dict[int, int] = {rank: 0 for rank in range(total_ranks)}
    for index in unique:
        counts[index % total_ranks] += 1
    return counts


def max_accesses_per_rank(
    queries: Sequence[Sequence[int]], total_ranks: int = 32
) -> int:
    """Fig. 15's claim: per-leaf unique accesses stay below the batch size."""
    return max(per_rank_access_counts(queries, total_ranks).values())
