"""Small statistics helpers for multi-seed experiments.

The calibrated workloads are stochastic, so the evaluation figures report
means over several seeds; these helpers add the uncertainty the paper's
plots omit — bootstrap confidence intervals and a simple two-sample check
that a measured speedup is not seed noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Mean with a bootstrap confidence interval."""

    mean: float
    low: float
    high: float
    samples: int
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} [{self.low:.4g}, {self.high:.4g}] "
            f"({int(100 * self.confidence)}% CI, n={self.samples})"
        )


def bootstrap_mean(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> SummaryStats:
    """Bootstrap confidence interval for the mean of a small sample."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("need at least one sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 100:
        raise ValueError("resamples must be >= 100")
    rng = np.random.default_rng(seed)
    if values.size == 1:
        value = float(values[0])
        return SummaryStats(value, value, value, 1, confidence)
    means = rng.choice(values, size=(resamples, values.size), replace=True).mean(
        axis=1
    )
    alpha = (1 - confidence) / 2
    low, high = np.quantile(means, [alpha, 1 - alpha])
    return SummaryStats(
        mean=float(values.mean()),
        low=float(low),
        high=float(high),
        samples=int(values.size),
        confidence=confidence,
    )


def speedup_significant(
    baseline: Sequence[float],
    improved: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> bool:
    """True when the baseline/improved latency ratio's CI stays above 1.

    Bootstraps the ratio of means; a speedup is "significant" when the
    lower confidence bound exceeds 1.0.
    """
    baseline = np.asarray(list(baseline), dtype=np.float64)
    improved = np.asarray(list(improved), dtype=np.float64)
    if baseline.size == 0 or improved.size == 0:
        raise ValueError("need samples on both sides")
    if np.any(improved <= 0):
        raise ValueError("latencies must be positive")
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(resamples):
        b = rng.choice(baseline, size=baseline.size, replace=True).mean()
        i = rng.choice(improved, size=improved.size, replace=True).mean()
        ratios.append(b / i)
    low = float(np.quantile(ratios, (1 - confidence) / 2))
    return low > 1.0
