"""Spatial-locality probabilities (paper §III-C).

RecNMP can only reduce at NDP when related vectors share a memory device.
With vectors placed uniformly at random, the chance collapses with system
size — the paper's birthday-paradox argument that "the probability of having
a query with indices on the same channel is only up to 25 % in a
four-channel system".
"""

from __future__ import annotations

import math
from typing import Sequence


def prob_all_same_device(query_len: int, devices: int) -> float:
    """P(all q random vectors land on one specific shared device group).

    The first index is free; each subsequent index must match its device:
    (1/devices)^(q−1).  For q = 2 on 4 channels this is the paper's 25 %.
    """
    if query_len < 1:
        raise ValueError("query_len must be >= 1")
    if devices < 1:
        raise ValueError("devices must be >= 1")
    return (1.0 / devices) ** (query_len - 1)


def expected_occupied_devices(query_len: int, devices: int) -> float:
    """E[#devices holding at least one of q uniformly placed vectors]."""
    if query_len < 0 or devices < 1:
        raise ValueError("invalid arguments")
    return devices * (1.0 - (1.0 - 1.0 / devices) ** query_len)


def expected_lonely_vectors(query_len: int, devices: int) -> float:
    """E[#vectors alone on their device] — what RecNMP must ship raw."""
    if query_len < 1 or devices < 1:
        raise ValueError("invalid arguments")
    return query_len * (1.0 - 1.0 / devices) ** (query_len - 1)


def expected_ndp_reducible_fraction(query_len: int, devices: int) -> float:
    """Fraction of a query's q−1 reductions RecNMP can do at NDP.

    Vectors sharing a device contribute (group size − 1) local reductions;
    in expectation that is q − E[occupied devices].
    """
    if query_len < 2:
        return 0.0
    local = query_len - expected_occupied_devices(query_len, devices)
    return max(0.0, local / (query_len - 1))


def measured_colocation_fraction(
    queries: Sequence[Sequence[int]], devices: int
) -> float:
    """Empirical counterpart of :func:`expected_ndp_reducible_fraction`.

    Devices are assigned with the reference placement (index mod devices at
    DIMM granularity is handled by the caller's mapping; here a simple
    modulo stands in for any uniform hash).
    """
    local = 0
    total = 0
    for query in queries:
        distinct = set(query)
        if len(distinct) < 2:
            continue
        groups: dict = {}
        for index in distinct:
            groups.setdefault(index % devices, []).append(index)
        local += sum(len(g) - 1 for g in groups.values())
        total += len(distinct) - 1
    return local / total if total else 0.0
