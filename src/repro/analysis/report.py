"""Fixed-width table rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


class Table:
    """A small plain-text table builder.

    >>> table = Table(["engine", "speedup"])
    >>> _ = table.add_row(["fafnir", 21.3])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    engine | speedup
    -------+--------
    fafnir |   21.30
    """

    def __init__(self, headers: Sequence[str], float_format: str = "{:.2f}") -> None:
        if not headers:
            raise ValueError("need at least one column")
        self.headers = [str(h) for h in headers]
        self.float_format = float_format
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[Cell]) -> "Table":
        formatted = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(self.float_format.format(cell))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells for {len(self.headers)} columns"
            )
        self.rows.append(formatted)
        return self

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for column, cell in enumerate(row):
                widths[column] = max(widths[column], len(cell))
        header = " | ".join(
            h.ljust(widths[i]) for i, h in enumerate(self.headers)
        )
        separator = "-+-".join("-" * w for w in widths)
        lines = [header, separator]
        for row in self.rows:
            lines.append(
                " | ".join(
                    cell.rjust(widths[i]) if _is_number(cell) else cell.ljust(widths[i])
                    for i, cell in enumerate(row)
                )
            )
        return "\n".join(lines)

    def print(self, title: str = "") -> None:
        if title:
            print(f"\n=== {title} ===")
        print(self.render())

    def records(self) -> List[dict]:
        """Rows as header-keyed dicts — the machine-readable twin of
        :meth:`render`, consumed by the bench harness's JSON reports."""
        return [dict(zip(self.headers, row)) for row in self.rows]


def _is_number(text: str) -> bool:
    try:
        float(text.replace("×", "").replace("%", ""))
        return True
    except ValueError:
        return False
