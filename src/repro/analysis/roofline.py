"""Roofline placement of embedding lookup (paper §II).

The paper motivates NDP by noting that embedding lookup "puts recommendation
systems in the memory-bound region of the roofline model of CPUs and far
below the ceiling because of memory bandwidth underutilization."  This
module provides the arithmetic: operational intensity of gather-reduce,
attainable performance under a roofline, and the bandwidth-utilisation gap
the measured engines leave.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Roofline:
    """A machine roofline: peak compute and peak memory bandwidth."""

    peak_gflops: float
    peak_bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.peak_bandwidth_gbps <= 0:
            raise ValueError("roofline peaks must be positive")

    @property
    def ridge_intensity(self) -> float:
        """FLOP/byte at which compute and memory bounds meet."""
        return self.peak_gflops / self.peak_bandwidth_gbps

    def attainable_gflops(self, intensity: float) -> float:
        """Attainable performance at a given operational intensity."""
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        return min(self.peak_gflops, self.peak_bandwidth_gbps * intensity)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_intensity


def gather_reduce_intensity(
    query_len: int, vector_bytes: int, element_bytes: int = 4
) -> float:
    """Operational intensity (FLOP/byte) of one gather-reduce query.

    Reading q vectors of v elements and folding them with q−1 element-wise
    adds performs (q−1)·v FLOPs over q·v·element_bytes bytes — well under
    1 FLOP/byte, deep in the memory-bound region for any real machine.
    """
    if query_len < 1 or vector_bytes <= 0 or element_bytes <= 0:
        raise ValueError("invalid parameters")
    elements = vector_bytes // element_bytes
    flops = (query_len - 1) * elements
    bytes_moved = query_len * vector_bytes
    return flops / bytes_moved


def bandwidth_utilization(
    bytes_read: int, elapsed_ns: float, roofline: Roofline
) -> float:
    """Achieved ÷ peak bandwidth — the gap FAFNIR closes (paper Fig. 13
    discussion: "filling the gap under the roofline model of RecNMP")."""
    if bytes_read < 0 or elapsed_ns <= 0:
        raise ValueError("invalid measurements")
    achieved_gbps = bytes_read / elapsed_ns
    return achieved_gbps / roofline.peak_bandwidth_gbps


# A representative server-class host: 2 TFLOP/s peak, 4-channel DDR4-2400.
SERVER_ROOFLINE = Roofline(peak_gflops=2000.0, peak_bandwidth_gbps=76.8)
