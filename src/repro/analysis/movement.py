"""Data-movement accounting (paper §III-A, Fig. 2).

For ``n`` queries of ``q`` indices over ``v``-element vectors:

* baseline (no NDP) ships every gathered vector: ``n·q·v`` elements;
* TensorDIMM and FAFNIR ship only outputs: ``n·v``;
* RecNMP ships one item per (query, occupied DIMM): between ``n·v`` and
  ``n·q·v`` depending on spatial locality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.locality import expected_occupied_devices


@dataclass(frozen=True)
class MovementModel:
    """Closed-form element-movement counts for one batch shape."""

    queries: int
    query_len: int
    vector_elements: int

    def __post_init__(self) -> None:
        if min(self.queries, self.query_len, self.vector_elements) < 1:
            raise ValueError("all parameters must be positive")

    @property
    def baseline_elements(self) -> int:
        return self.queries * self.query_len * self.vector_elements

    @property
    def tensordimm_elements(self) -> int:
        return self.queries * self.vector_elements

    @property
    def fafnir_elements(self) -> int:
        return self.queries * self.vector_elements

    def recnmp_expected_elements(self, dimms: int) -> float:
        """Expected shipped items: one per occupied DIMM per query."""
        per_query = expected_occupied_devices(self.query_len, dimms)
        return self.queries * per_query * self.vector_elements

    @property
    def ndp_operations(self) -> int:
        """Total reduction operations: n·(q−1)·v (§III-A)."""
        return self.queries * (self.query_len - 1) * self.vector_elements

    def movement_reduction(self, engine: str, dimms: int = 16) -> float:
        """Factor by which an engine shrinks movement vs the baseline."""
        shipped = {
            "baseline": float(self.baseline_elements),
            "tensordimm": float(self.tensordimm_elements),
            "fafnir": float(self.fafnir_elements),
            "recnmp": self.recnmp_expected_elements(dimms),
        }
        try:
            return self.baseline_elements / shipped[engine]
        except KeyError:
            raise KeyError(
                f"unknown engine {engine!r}; expected one of {sorted(shipped)}"
            ) from None


def measured_movement_elements(
    queries: Sequence[Sequence[int]],
    vector_elements: int,
    shipped_items_per_query: Sequence[int],
) -> int:
    """Movement from a simulated run: shipped items × vector width."""
    if len(shipped_items_per_query) != len(queries):
        raise ValueError("one shipped-item count per query required")
    return sum(shipped_items_per_query) * vector_elements
