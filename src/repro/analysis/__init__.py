"""Analysis utilities: sharing, locality, data movement, reporting."""

from repro.analysis.locality import (
    expected_lonely_vectors,
    expected_ndp_reducible_fraction,
    expected_occupied_devices,
    measured_colocation_fraction,
    prob_all_same_device,
)
from repro.analysis.energy import (
    EnergyBreakdown,
    energy_saving_vs,
    run_energy,
)
from repro.analysis.movement import MovementModel, measured_movement_elements
from repro.analysis.report import Table
from repro.analysis.roofline import (
    Roofline,
    SERVER_ROOFLINE,
    bandwidth_utilization,
    gather_reduce_intensity,
)
from repro.analysis.statistics import (
    SummaryStats,
    bootstrap_mean,
    speedup_significant,
)
from repro.analysis.unique import (
    UniqueIndexStats,
    max_accesses_per_rank,
    per_rank_access_counts,
    unique_fraction_stats,
)

__all__ = [
    "EnergyBreakdown",
    "MovementModel",
    "energy_saving_vs",
    "run_energy",
    "Roofline",
    "SERVER_ROOFLINE",
    "bandwidth_utilization",
    "gather_reduce_intensity",
    "Table",
    "SummaryStats",
    "bootstrap_mean",
    "speedup_significant",
    "UniqueIndexStats",
    "expected_lonely_vectors",
    "expected_ndp_reducible_fraction",
    "expected_occupied_devices",
    "max_accesses_per_rank",
    "measured_colocation_fraction",
    "measured_movement_elements",
    "per_rank_access_counts",
    "prob_all_same_device",
    "unique_fraction_stats",
]
