"""End-to-end energy accounting (paper §VI).

The paper argues DRAM energy dominates and that FAFNIR saves it two ways:
fewer memory accesses (no redundant reads) and a negligible NDP power adder
(111.64 mW vs RecNMP's 184.2 mW *per DIMM*).  This module composes a run's
DRAM dynamic energy (from :class:`~repro.memory.trace.AccessStats`) with the
accelerator-power × time product into a per-engine energy figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.power import DIMM_RANK_NODE_MW, RECNMP_PER_DIMM_MW, SYSTEM_MW
from repro.memory.config import DramEnergy
from repro.memory.trace import AccessStats

# Nominal NDP power adders (mW) per engine for the reference 16-DIMM system.
NDP_POWER_MW = {
    "fafnir": SYSTEM_MW,
    "recnmp": RECNMP_PER_DIMM_MW * 16,
    "tensordimm": DIMM_RANK_NODE_MW * 16,  # adder chains, FAFNIR-node-class
    "cpu-baseline": 0.0,
    "centaur": SYSTEM_MW,  # package-side reduction unit, FAFNIR-class
}


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one batch on one engine, in nanojoules."""

    dram_nj: float
    ndp_nj: float

    @property
    def total_nj(self) -> float:
        return self.dram_nj + self.ndp_nj

    @property
    def dram_share(self) -> float:
        return self.dram_nj / self.total_nj if self.total_nj else 0.0


def run_energy(
    memory_stats: AccessStats,
    elapsed_ns: float,
    engine_name: str,
    dram_energy: DramEnergy = None,
) -> EnergyBreakdown:
    """Energy of one run: DRAM access energy + NDP power × elapsed time."""
    if elapsed_ns < 0:
        raise ValueError("elapsed_ns must be non-negative")
    try:
        ndp_mw = NDP_POWER_MW[engine_name]
    except KeyError:
        raise KeyError(
            f"unknown engine {engine_name!r}; known: {sorted(NDP_POWER_MW)}"
        ) from None
    dram_energy = dram_energy or DramEnergy()
    dram_pj = dram_energy.access_energy_pj(
        bursts=memory_stats.bursts, activates=memory_stats.activates
    )
    # 1 mW = 1 pJ/ns, so power (mW) × time (ns) gives picojoules.
    ndp_pj = ndp_mw * elapsed_ns
    return EnergyBreakdown(dram_nj=dram_pj / 1000, ndp_nj=ndp_pj / 1000)


def energy_saving_vs(
    ours: EnergyBreakdown, baseline: EnergyBreakdown
) -> float:
    """Fractional total-energy saving of ``ours`` relative to ``baseline``."""
    if baseline.total_nj <= 0:
        raise ValueError("baseline energy must be positive")
    return 1.0 - ours.total_nj / baseline.total_nj
