"""Set-associative rank-cache model used by RecNMP (paper §III-E).

RecNMP reduces redundant DRAM accesses with per-rank caches: 128 KB per rank
achieves at most a ~50 % hit rate in the paper.  The cache stores whole
embedding vectors, so its capacity in vectors is ``size_bytes /
vector_bytes`` (256 vectors at the reference 512 B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class VectorCache:
    """LRU set-associative cache keyed by vector id."""

    def __init__(
        self,
        size_bytes: int = 128 * 1024,
        vector_bytes: int = 512,
        ways: int = 8,
    ) -> None:
        if size_bytes <= 0 or vector_bytes <= 0 or ways <= 0:
            raise ValueError("cache parameters must be positive")
        capacity = size_bytes // vector_bytes
        if capacity < ways:
            raise ValueError(
                f"cache of {size_bytes} B holds {capacity} vectors, fewer "
                f"than {ways} ways"
            )
        self.num_sets = max(1, capacity // ways)
        self.ways = ways
        self._sets: Dict[int, List[int]] = {}
        self.stats = CacheStats()

    @property
    def capacity_vectors(self) -> int:
        return self.num_sets * self.ways

    def access(self, vector_id: int) -> bool:
        """Touch a vector; returns True on hit.  Misses allocate (LRU)."""
        if vector_id < 0:
            raise ValueError("vector_id must be non-negative")
        index = vector_id % self.num_sets
        entries = self._sets.setdefault(index, [])
        if vector_id in entries:
            entries.remove(vector_id)
            entries.append(vector_id)  # most-recently-used at the tail
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        entries.append(vector_id)
        if len(entries) > self.ways:
            entries.pop(0)
        return False

    def reset(self) -> None:
        self._sets.clear()
        self.stats = CacheStats()


class RankCacheArray:
    """One :class:`VectorCache` per rank, as RecNMP deploys them."""

    def __init__(
        self,
        num_ranks: int,
        size_bytes: int = 128 * 1024,
        vector_bytes: int = 512,
        ways: int = 8,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self._caches = [
            VectorCache(size_bytes, vector_bytes, ways) for _ in range(num_ranks)
        ]

    def access(self, rank: int, vector_id: int) -> bool:
        return self._caches[rank].access(vector_id)

    def reset(self) -> None:
        for cache in self._caches:
            cache.reset()

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._caches:
            total.hits += cache.stats.hits
            total.misses += cache.stats.misses
        return total
