"""Set-associative rank-cache model used by RecNMP (paper §III-E).

RecNMP reduces redundant DRAM accesses with per-rank caches: 128 KB per rank
achieves at most a ~50 % hit rate in the paper.  The cache stores whole
embedding vectors, so its capacity in vectors is ``size_bytes /
vector_bytes`` (256 vectors at the reference 512 B).

This module is now a thin facade over the shared hot-index tiering model
(:mod:`repro.tiering.cache`): :class:`VectorCache` delegates every access
to a :class:`~repro.tiering.cache.HotIndexCache` with the same geometry
and LRU policy, and :class:`CacheStats` *is* the tiering model's stats
type.  Baseline numbers and the FAFNIR tier therefore cannot drift apart
— ``tests/baselines/test_cache.py`` pins the delegation with an
old-vs-new hit/miss stream equivalence test.
"""

from __future__ import annotations

from repro.tiering.cache import CacheStats, HotIndexCache, POLICY_LRU

__all__ = ["CacheStats", "VectorCache", "RankCacheArray"]


class VectorCache:
    """LRU set-associative cache keyed by vector id.

    The historical RecNMP-baseline interface (``vector_bytes`` naming,
    ``capacity_vectors``), implemented by the shared
    :class:`~repro.tiering.cache.HotIndexCache`.
    """

    def __init__(
        self,
        size_bytes: int = 128 * 1024,
        vector_bytes: int = 512,
        ways: int = 8,
    ) -> None:
        self._cache = HotIndexCache(
            size_bytes=size_bytes,
            line_bytes=vector_bytes,
            ways=ways,
            policy=POLICY_LRU,
        )

    @property
    def num_sets(self) -> int:
        return self._cache.num_sets

    @property
    def ways(self) -> int:
        return self._cache.ways

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def capacity_vectors(self) -> int:
        return self._cache.capacity_lines

    def access(self, vector_id: int) -> bool:
        """Touch a vector; returns True on hit.  Misses allocate (LRU)."""
        return self._cache.access(vector_id)

    def reset(self) -> None:
        self._cache.reset()


class RankCacheArray:
    """One :class:`VectorCache` per rank, as RecNMP deploys them."""

    def __init__(
        self,
        num_ranks: int,
        size_bytes: int = 128 * 1024,
        vector_bytes: int = 512,
        ways: int = 8,
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self._caches = [
            VectorCache(size_bytes, vector_bytes, ways) for _ in range(num_ranks)
        ]

    def access(self, rank: int, vector_id: int) -> bool:
        return self._caches[rank].access(vector_id)

    def reset(self) -> None:
        for cache in self._caches:
            cache.reset()

    @property
    def stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._caches:
            total = total.merged_with(cache.stats)
        return total
