"""Two-Step SpMV NDP accelerator model (paper §V, baseline [10]).

The Two-Step algorithm converts SpMV's random accesses into fully regular
streams in two phases:

1. **Step 1 (multiply)** — stream the compressed matrix, multiply by the
   operand vector, and **write every intermediate (row, product) pair back
   to memory** in sorted runs.  This is where it loses to FAFNIR: the
   intermediate write-out roughly triples memory traffic (read + scattered
   run writes), and the run-formation/decompression pipeline adds stalls,
   while FAFNIR reduces products in flight and writes nothing.
2. **Merge (iterations > 0)** — a dedicated binary-tree **multi-way merge
   core** combines the sorted runs.  This is where it beats FAFNIR: the
   merge core sustains several times the generic tree's merge throughput.

Parameter defaults are calibrated so the FAFNIR-over-Two-Step speedup spans
the paper's observed 1.1× (large, merge-dominated graphs) to 4.6× (small
scientific matrices with no merge iterations) — the Fig. 14 shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks import DRAM_CLOCK, PE_CLOCK, convert_cycles
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystem
from repro.spmv.interface import SpmvEngine, SpmvResult, SpmvStats
from repro.spmv.planner import SpmvPlan
from repro.spmv.semiring import PLUS_TIMES, Semiring
from repro.spmv.streaming import modelled_stream_cycles, stream_read_cycles

STREAM_ENTRY_BYTES = 8


@dataclass(frozen=True)
class TwoStepParameters:
    """Cost parameters of the Two-Step pipeline.

    ``input_read_amplification``: the Two-Step input format carries
    run/partition metadata on top of the raw (value, index) pairs.
    ``run_write_amplification``: intermediate runs scatter across row space,
    so run write-out moves more than the raw pair bytes (partial-row writes,
    run padding).  ``pipeline_stall_factor``: decompression/run-formation
    stalls on the multiply pipeline.  ``merge_elements_per_cycle``: the
    optimized multi-way merge core's throughput — several times the generic
    FAFNIR tree's (8 elements/cycle).  Calibrated jointly so the
    FAFNIR/Two-Step speedup spans ≈1.2–4.8× across the workload suite
    against the paper's 1.1–4.6×.
    """

    input_read_amplification: float = 2.0
    run_write_amplification: float = 4.0
    pipeline_stall_factor: float = 1.4
    merge_elements_per_cycle: int = 96
    round_overhead_pe_cycles: int = 64
    multiply_lanes: int = 128


class TwoStepSpmvEngine(SpmvEngine):
    """The state-of-the-art NDP SpMV baseline."""

    name = "two-step"

    def __init__(
        self,
        memory_config: Optional[MemoryConfig] = None,
        vector_size: int = 2048,
        merge_fan_in: int = 128,
        parameters: Optional[TwoStepParameters] = None,
    ) -> None:
        self.memory = MemorySystem(memory_config or MemoryConfig())
        self.vector_size = vector_size
        self.merge_fan_in = merge_fan_in
        self.parameters = parameters or TwoStepParameters()

    # ------------------------------------------------------------------
    def _step1_cycles_pe(self, chunk_nnz: int, chunk_cols: int) -> int:
        if chunk_nnz == 0:
            return 0
        parameters = self.parameters
        read_bytes = (
            int(chunk_nnz * STREAM_ENTRY_BYTES * parameters.input_read_amplification)
            + chunk_cols * 4
        )
        read_dram = stream_read_cycles(self.memory, read_bytes)
        write_bytes = int(
            chunk_nnz * STREAM_ENTRY_BYTES * parameters.run_write_amplification
        )
        write_dram = modelled_stream_cycles(self.memory.config, write_bytes)
        memory_pe = convert_cycles(
            read_dram + write_dram, DRAM_CLOCK, PE_CLOCK
        )
        compute_pe = math.ceil(
            chunk_nnz
            * parameters.pipeline_stall_factor
            / parameters.multiply_lanes
        )
        # The run write-out serialises behind the multiply: intermediates
        # must be formed before they stream out, and the shared channels
        # carry read + write traffic back-to-back.
        return (
            max(memory_pe, compute_pe)
            + parameters.round_overhead_pe_cycles
        )

    def _merge_cycles_pe(self, plan: SpmvPlan, entries_per_stream: int) -> int:
        parameters = self.parameters
        if plan.merge_iterations == 0:
            # The algorithm is named for its mandatory second step: even a
            # single run is written out in step 1 and must be read back
            # through the merge core to emit the dense output.  FAFNIR, by
            # contrast, finishes single-chunk inputs entirely in-stream.
            traffic = 2 * entries_per_stream * STREAM_ENTRY_BYTES
            stream_pe = convert_cycles(
                modelled_stream_cycles(self.memory.config, traffic),
                DRAM_CLOCK,
                PE_CLOCK,
            )
            merge_pe = math.ceil(
                entries_per_stream / parameters.merge_elements_per_cycle
            )
            return max(stream_pe, merge_pe) + parameters.round_overhead_pe_cycles
        total = 0
        streams = plan.chunks
        for _ in range(plan.merge_iterations):
            after = math.ceil(streams / plan.merge_fan_in)
            entries = streams * entries_per_stream
            traffic = 2 * entries * STREAM_ENTRY_BYTES  # read runs + write out
            stream_pe = convert_cycles(
                modelled_stream_cycles(self.memory.config, traffic),
                DRAM_CLOCK,
                PE_CLOCK,
            )
            merge_pe = math.ceil(entries / parameters.merge_elements_per_cycle)
            total += max(stream_pe, merge_pe) + parameters.round_overhead_pe_cycles
            streams = after
        return total

    # ------------------------------------------------------------------
    def multiply(
        self, matrix, x: np.ndarray, semiring: Semiring = PLUS_TIMES
    ) -> SpmvResult:
        x = np.asarray(x, dtype=np.float64)
        n_rows, n_cols = matrix.shape
        if x.shape != (n_cols,):
            raise ValueError(f"operand has shape {x.shape}, expected ({n_cols},)")

        plan = SpmvPlan(
            n_cols=n_cols,
            vector_size=self.vector_size,
            merge_fan_in=self.merge_fan_in,
        )
        chunks = matrix.split_columns(self.vector_size)

        y = np.full(n_rows, semiring.zero)
        step1_pe = 0
        partial_entries_max = 0
        for chunk_id, chunk in enumerate(chunks):
            start = chunk_id * self.vector_size
            y = semiring.add(
                y, semiring.matvec(chunk, x[start : start + chunk.shape[1]])
            )
            step1_pe += self._step1_cycles_pe(chunk.nnz, chunk.shape[1])
            touched = sum(1 for values in chunk.row_values if len(values))
            partial_entries_max = max(partial_entries_max, touched)

        merge_pe = self._merge_cycles_pe(plan, partial_entries_max)
        stats = SpmvStats(
            step1_ns=PE_CLOCK.cycles_to_ns(step1_pe),
            merge_ns=PE_CLOCK.cycles_to_ns(merge_pe),
            matrix_stream_bytes=matrix.nnz * STREAM_ENTRY_BYTES,
            intermediate_bytes=matrix.nnz * STREAM_ENTRY_BYTES,
            nnz=matrix.nnz,
            partial_entries=partial_entries_max,
        )
        return SpmvResult(y=y, stats=stats, plan=plan)
