"""Baseline NDP engines the paper compares against, plus the FAFNIR adapter."""

from repro.baselines.base import (
    CoreComputeModel,
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    functional_reduce,
)
from repro.baselines.cache import CacheStats, RankCacheArray, VectorCache
from repro.baselines.centaur import CentaurGatherEngine
from repro.baselines.cpu import CpuGatherEngine
from repro.baselines.fafnir_adapter import FafnirGatherEngine
from repro.baselines.recnmp import RecNmpGatherEngine
from repro.baselines.tensordimm import TensorDimmGatherEngine

__all__ = [
    "CacheStats",
    "CentaurGatherEngine",
    "CoreComputeModel",
    "CpuGatherEngine",
    "FafnirGatherEngine",
    "GatherEngine",
    "GatherResult",
    "GatherTiming",
    "HostLink",
    "RankCacheArray",
    "RecNmpGatherEngine",
    "TensorDimmGatherEngine",
    "VectorCache",
    "functional_reduce",
]
