"""Centaur model (paper §III-D).

Centaur accepts the data movement of sparse gathering and attacks the
*communication* instead: embedding vectors cross **high-bandwidth links**
(the paper's CPU+FPGA package) to a separate reduction unit near the cores.
Unlike TensorDIMM it does not reduce data movement — it moves the same
``n·q·v`` elements faster.  It serves as the "throw bandwidth at it"
comparison point: FAFNIR still wins because it moves ``q×`` fewer bytes in
the first place.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.base import (
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    VectorSource,
    functional_reduce,
)
from repro.clocks import DRAM_CLOCK, PE_CLOCK
from repro.core.batch import plan_batch
from repro.core.operators import ReductionOperator, SUM
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem

# The package-level reduction unit chews an arriving vector per cycle pair.
REDUCTION_UNIT_STAGE_CYCLES = 8


class CentaurGatherEngine(GatherEngine):
    """High-bandwidth-link gather with a near-core reduction unit."""

    name = "centaur"

    def __init__(
        self,
        memory_config: MemoryConfig = None,
        operator: ReductionOperator = SUM,
        vector_bytes: int = 512,
        link_multiplier: float = 4.0,
    ) -> None:
        """``link_multiplier``: how much faster Centaur's serial links are
        than the baseline host link (its defining feature)."""
        super().__init__(operator)
        if link_multiplier <= 0:
            raise ValueError("link_multiplier must be positive")
        self.memory_config = memory_config or MemoryConfig()
        self.vector_bytes = vector_bytes
        self.memory = MemorySystem(self.memory_config)
        self.placement = RowMajorPlacement(
            self.memory_config.geometry, vector_bytes
        )
        base = HostLink(channels=self.memory_config.geometry.channels)
        self.link = HostLink(
            bandwidth_gbps_per_channel=base.bandwidth_gbps_per_channel
            * link_multiplier,
            channels=base.channels,
            base_latency_ns=base.base_latency_ns,
        )

    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        self.memory.reset()
        plan = plan_batch(queries, deduplicate=False)

        requests: List[ReadRequest] = []
        for index in plan.reads:
            requests.extend(self.placement.requests_for(index))
        _, stats = self.memory.execute(requests)
        memory_ns = DRAM_CLOCK.cycles_to_ns(stats.finish_cycle)

        # Every raw vector crosses the (fast) link to the reduction unit.
        bytes_to_core = plan.total_lookups * self.vector_bytes
        transfer_ns = self.link.transfer_ns(bytes_to_core)

        # The reduction unit pipelines: one chained stage per folded vector.
        reduction_stages = sum(max(0, len(q) - 1) for q in plan.queries)
        longest = max(max(0, len(q) - 1) for q in plan.queries)
        unit_cycles = (longest + len(plan.queries) - 1) * REDUCTION_UNIT_STAGE_CYCLES
        unit_ns = PE_CLOCK.cycles_to_ns(unit_cycles)

        timing = GatherTiming(
            memory_ns=memory_ns,
            ndp_compute_ns=unit_ns,
            core_compute_ns=0.0,
            transfer_ns=transfer_ns,
            total_ns=memory_ns + transfer_ns + unit_ns,
        )
        return GatherResult(
            vectors=functional_reduce(plan.queries, source, self.operator),
            timing=timing,
            memory_stats=stats,
            bytes_to_core=bytes_to_core,
            dram_reads=stats.reads,
            ndp_reduced_vectors=reduction_stages,
            core_reduced_vectors=0,
        )
