"""RecNMP model (paper §III-C/E, Fig. 2c).

RecNMP keeps whole vectors in single ranks (row-major) and fuses
gather-reduce inside each DIMM's NMP unit.  Its strength — rank-level
parallelism with intact row-buffer locality — and its weakness — reliance on
*spatial locality* — both emerge here:

* vectors of one query that happen to share a DIMM are reduced locally and
  only the partial sum is shipped;
* vectors alone in their DIMM are shipped to the cores **raw**, where the
  CPU finishes the reduction.  With random placement the chance that two
  related vectors share a DIMM falls with system size (birthday paradox,
  §III-C), so data movement is not guaranteed to shrink.

Optionally each rank gets a 128 KB vector cache (§III-E) to absorb redundant
accesses — RecNMP's answer to the sharing FAFNIR exploits with its
unique-index batch mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.baselines.base import (
    CoreComputeModel,
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    VectorSource,
    functional_reduce,
)
from repro.baselines.cache import RankCacheArray
from repro.clocks import DRAM_CLOCK, PE_CLOCK
from repro.core.batch import plan_batch
from repro.core.operators import ReductionOperator, SUM
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem

# One chained gather-reduce stage of a DIMM NMP unit, in 200 MHz cycles
# (element-wise add of an arriving vector into the local partial sum).
NMP_STAGE_CYCLES = 16


class RecNmpGatherEngine(GatherEngine):
    """Rank-parallel NDP reduction limited by spatial locality."""

    name = "recnmp"

    def __init__(
        self,
        memory_config: MemoryConfig = None,
        operator: ReductionOperator = SUM,
        vector_bytes: int = 512,
        link: HostLink = None,
        core: CoreComputeModel = None,
        with_cache: bool = False,
        cache_bytes: int = 128 * 1024,
        max_cache_hit_rate: float = 0.5,
    ) -> None:
        super().__init__(operator)
        self.memory_config = memory_config or MemoryConfig()
        self.vector_bytes = vector_bytes
        self.memory = MemorySystem(self.memory_config)
        self.placement = RowMajorPlacement(
            self.memory_config.geometry, vector_bytes
        )
        self.link = link or HostLink(
            channels=self.memory_config.geometry.channels
        )
        self.core = core or CoreComputeModel()
        self.with_cache = with_cache
        self.max_cache_hit_rate = max_cache_hit_rate
        self._caches = (
            RankCacheArray(
                self.memory_config.geometry.total_ranks,
                size_bytes=cache_bytes,
                vector_bytes=vector_bytes,
            )
            if with_cache
            else None
        )

    # ------------------------------------------------------------------
    def _dimm_groups(
        self, query: frozenset
    ) -> Dict[Tuple[int, int], List[int]]:
        """Partition a query's indices by the DIMM holding each vector."""
        groups: Dict[Tuple[int, int], List[int]] = {}
        geometry = self.memory_config.geometry
        for index in sorted(query):
            rank = self.placement.home_rank(index)
            assert rank is not None
            groups.setdefault(geometry.dimm_of(rank), []).append(index)
        return groups

    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        self.memory.reset()
        if self._caches is not None:
            self._caches.reset()
        # RecNMP reads per occurrence; only the cache absorbs repeats.
        plan = plan_batch(queries, deduplicate=False)

        requests: List[ReadRequest] = []
        cache_hits = 0
        for index in plan.reads:
            rank = self.placement.home_rank(index)
            assert rank is not None
            if self._caches is not None and self._caches.access(rank, index):
                # The paper observes rank caches cannot exceed ~50 % hit
                # rate in production traces; clamp optimistic synthetic
                # locality to that bound by re-issuing excess hits as reads.
                total = self._caches.stats.accesses
                if cache_hits + 1 <= self.max_cache_hit_rate * total:
                    cache_hits += 1
                    continue
            requests.extend(self.placement.requests_for(index))
        _, stats = self.memory.execute(requests)
        memory_ns = DRAM_CLOCK.cycles_to_ns(stats.finish_cycle)

        # Spatial-locality partition: per query, per DIMM.
        shipped_items = 0
        ndp_chain_per_dimm: Dict[Tuple[int, int], int] = {}
        ndp_reduced = 0
        core_element_ops = 0
        core_vectors = 0
        elements = self.vector_bytes // 4
        for query in plan.queries:
            groups = self._dimm_groups(query)
            shipped_items += len(groups)
            for dimm, members in groups.items():
                if len(members) > 1:
                    ndp_chain_per_dimm[dimm] = (
                        ndp_chain_per_dimm.get(dimm, 0) + len(members) - 1
                    )
                    ndp_reduced += len(members) - 1
            # The core combines the shipped items (partials + raws).
            core_element_ops += (len(groups) - 1) * elements
            core_vectors += len(groups)

        ndp_cycles = (
            max(ndp_chain_per_dimm.values()) * NMP_STAGE_CYCLES
            if ndp_chain_per_dimm
            else 0
        )
        ndp_ns = PE_CLOCK.cycles_to_ns(ndp_cycles)
        bytes_to_core = shipped_items * self.vector_bytes
        transfer_ns = self.link.transfer_ns(bytes_to_core)
        core_ns = self.core.reduce_ns(core_element_ops, core_vectors)

        timing = GatherTiming(
            memory_ns=memory_ns,
            ndp_compute_ns=ndp_ns,
            core_compute_ns=core_ns,
            transfer_ns=transfer_ns,
            total_ns=memory_ns + ndp_ns + transfer_ns + core_ns,
        )
        return GatherResult(
            vectors=functional_reduce(plan.queries, source, self.operator),
            timing=timing,
            memory_stats=stats,
            bytes_to_core=bytes_to_core,
            dram_reads=stats.reads,
            ndp_reduced_vectors=ndp_reduced,
            core_reduced_vectors=core_vectors,
            cache_hits=cache_hits,
        )
