"""No-NDP baseline: gather everything to the cores (paper Fig. 2a).

Every embedding vector of every query crosses the memory channels and the
host link; all ``n·(q−1)·v`` reduction operations run on the CPU.  Redundant
indices are read (and shipped) once per occurrence — this engine is the
``n·q·v`` data-movement yardstick of §III-A.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.base import (
    CoreComputeModel,
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    VectorSource,
    functional_reduce,
)
from repro.clocks import DRAM_CLOCK
from repro.core.batch import plan_batch
from repro.core.operators import ReductionOperator, SUM
from repro.memory.config import MemoryConfig
from repro.memory.mapping import RowMajorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem


class CpuGatherEngine(GatherEngine):
    """Processor-centric embedding lookup with no near-data processing."""

    name = "cpu-baseline"

    def __init__(
        self,
        memory_config: MemoryConfig = None,
        operator: ReductionOperator = SUM,
        vector_bytes: int = 512,
        link: HostLink = None,
        core: CoreComputeModel = None,
    ) -> None:
        super().__init__(operator)
        self.memory_config = memory_config or MemoryConfig()
        self.vector_bytes = vector_bytes
        self.memory = MemorySystem(self.memory_config)
        self.placement = RowMajorPlacement(
            self.memory_config.geometry, vector_bytes
        )
        self.link = link or HostLink(
            channels=self.memory_config.geometry.channels
        )
        self.core = core or CoreComputeModel()

    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        self.memory.reset()
        plan = plan_batch(queries, deduplicate=False)

        requests: List[ReadRequest] = []
        for index in plan.reads:
            requests.extend(self.placement.requests_for(index))
        _, stats = self.memory.execute(requests)

        memory_ns = DRAM_CLOCK.cycles_to_ns(stats.finish_cycle)
        bytes_to_core = plan.total_lookups * self.vector_bytes
        transfer_ns = self.link.transfer_ns(bytes_to_core)

        elements = self.vector_bytes // 4
        element_ops = sum(
            (len(query) - 1) * elements for query in plan.queries
        )
        core_ns = self.core.reduce_ns(element_ops, plan.total_lookups)

        timing = GatherTiming(
            memory_ns=memory_ns,
            ndp_compute_ns=0.0,
            core_compute_ns=core_ns,
            transfer_ns=transfer_ns,
            # Transfer overlaps the tail of the reads; core reduction of a
            # query can only start once its last vector arrives, so the
            # serial chain is reads → link residue → reduction.
            total_ns=memory_ns + transfer_ns + core_ns,
        )
        return GatherResult(
            vectors=functional_reduce(plan.queries, source, self.operator),
            timing=timing,
            memory_stats=stats,
            bytes_to_core=bytes_to_core,
            dram_reads=stats.reads,
            ndp_reduced_vectors=0,
            core_reduced_vectors=plan.total_lookups,
        )
