"""Common interface and shared cost models for embedding-gather engines.

Every engine — the no-NDP CPU baseline, TensorDIMM, RecNMP, and the FAFNIR
adapter — services a batch of queries against the same DDR4 substrate and
reports a :class:`GatherResult`: functional outputs plus a latency breakdown
(memory, NDP compute, core compute, host transfer) and data-movement
accounting.  Keeping one interface keeps every ratio in the evaluation an
apples-to-apples comparison.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.clocks import CPU_CLOCK, Clock, PE_CLOCK
from repro.core.operators import ReductionOperator, SUM
from repro.memory.trace import AccessStats

VectorSource = Callable[[int], np.ndarray]


@dataclass(frozen=True)
class HostLink:
    """The link carrying data from the memory system to the cores.

    The paper's baseline ships every raw embedding vector across this link;
    NDP designs ship only outputs (plus, for RecNMP, un-reduced leftovers).
    Default bandwidth matches one DDR4-2400 channel (19.2 GB/s) per memory
    channel.
    """

    bandwidth_gbps_per_channel: float = 19.2
    channels: int = 4
    base_latency_ns: float = 50.0

    def transfer_ns(self, bytes_: int) -> float:
        if bytes_ < 0:
            raise ValueError("bytes_ must be non-negative")
        if bytes_ == 0:
            return 0.0
        total_gbps = self.bandwidth_gbps_per_channel * self.channels
        return self.base_latency_ns + bytes_ / total_gbps


@dataclass(frozen=True)
class CoreComputeModel:
    """Element-wise reduction throughput of the host CPU."""

    clock: Clock = CPU_CLOCK
    simd_elements_per_cycle: int = 32
    # Each gathered vector the core touches is a fresh 512 B DRAM-resident
    # object: the reduction loop eats a cache miss per vector (~43 ns at
    # 3 GHz).  This constant dominates RecNMP's core-side cost and is what
    # makes forwarding raw vectors to the CPU expensive (§III-C).
    per_vector_overhead_cycles: int = 128

    def reduce_ns(self, element_ops: int, vectors_touched: int) -> float:
        if element_ops < 0 or vectors_touched < 0:
            raise ValueError("counts must be non-negative")
        cycles = (
            element_ops / self.simd_elements_per_cycle
            + vectors_touched * self.per_vector_overhead_cycles
        )
        return self.clock.cycles_to_ns(cycles)


@dataclass
class GatherTiming:
    """Latency breakdown of one batch, in nanoseconds.

    ``memory_ns`` and ``ndp_compute_ns`` overlap in pipelined designs; each
    engine reports ``total_ns`` according to its own overlap structure, so
    the breakdown components are for attribution (Fig. 11-style stacks), and
    ``total_ns`` is authoritative for speedups.
    """

    memory_ns: float = 0.0
    ndp_compute_ns: float = 0.0
    core_compute_ns: float = 0.0
    transfer_ns: float = 0.0
    total_ns: float = 0.0

    def __post_init__(self) -> None:
        parts = (
            self.memory_ns,
            self.ndp_compute_ns,
            self.core_compute_ns,
            self.transfer_ns,
            self.total_ns,
        )
        if any(p < 0 for p in parts):
            raise ValueError("latency components must be non-negative")


@dataclass
class GatherResult:
    """Outputs plus measurements for one batch on one engine."""

    vectors: List[np.ndarray]
    timing: GatherTiming
    memory_stats: AccessStats
    bytes_to_core: int
    dram_reads: int
    ndp_reduced_vectors: int = 0
    core_reduced_vectors: int = 0
    cache_hits: int = 0

    @property
    def total_ns(self) -> float:
        return self.timing.total_ns


class GatherEngine(abc.ABC):
    """Abstract embedding-gather engine over the shared DDR4 substrate."""

    name: str = "abstract"

    def __init__(self, operator: ReductionOperator = SUM) -> None:
        self.operator = operator

    @abc.abstractmethod
    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        """Service one batch of queries; must reset substrate state first."""

    # ------------------------------------------------------------------
    def oracle_check(
        self,
        queries: Sequence[Sequence[int]],
        source: VectorSource,
        rtol: float = 1e-9,
    ) -> bool:
        """Verify functional outputs against a direct NumPy reduction."""
        result = self.lookup(queries, source)
        for query, produced in zip(queries, result.vectors):
            expected = self.operator.reduce_many(
                [np.asarray(source(i), dtype=np.float64) for i in sorted(set(query))]
            )
            if not np.allclose(produced, expected, rtol=rtol):
                return False
        return True


def functional_reduce(
    queries: Sequence[Sequence[int]],
    source: VectorSource,
    operator: ReductionOperator,
) -> List[np.ndarray]:
    """Reference gather-reduce used by baselines for their outputs."""
    outputs: List[np.ndarray] = []
    for query in queries:
        vectors = [np.asarray(source(i), dtype=np.float64) for i in sorted(set(query))]
        outputs.append(operator.reduce_many(vectors))
    return outputs
