"""TensorDIMM model (paper §III-A/B, Fig. 2b).

TensorDIMM stripes every embedding vector **column-major** across all ranks
and reduces inside the DIMMs, shipping only output vectors to the cores
(data movement ``n·v``, as good as FAFNIR).  Its two weaknesses, both of
which emerge from this model:

* **memory** — each vector read touches every rank for a thin slice from an
  effectively random row, destroying row-buffer locality (paper measures
  4.45× RecNMP/FAFNIR's single-query memory latency, up to 16× with no row
  hits at all);
* **compute** — the ``q−1`` reductions of one query are *pipelined*, not
  parallel: each DIMM-side NMP unit chains element-wise adds over arriving
  slices, so only ``v`` scalar operations run in parallel system-wide
  (2.5× FAFNIR's parallel-tree compute latency in Fig. 11).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.base import (
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    VectorSource,
    functional_reduce,
)
from repro.clocks import DRAM_CLOCK, PE_CLOCK
from repro.core.batch import plan_batch
from repro.core.operators import ReductionOperator, SUM
from repro.memory.config import MemoryConfig
from repro.memory.mapping import ColumnMajorPlacement
from repro.memory.request import ReadRequest
from repro.memory.system import MemorySystem

# One pipeline stage of the TensorDIMM NMP adder chain, in 200 MHz cycles:
# pop two slices from the FIFO, element-wise add, push.  Chosen so a 16-index
# query's chained reduction lands in the 2-3× range the paper's Fig. 11
# reports against FAFNIR's 5-level parallel tree.
PIPELINE_STAGE_CYCLES = 24

# How many vector reads the in-order adder chain keeps in flight.  The NMP
# units consume slices in query order, so distinct-vector reads cannot
# exploit rank-level parallelism the way RecNMP/FAFNIR do (§III-B: "only v
# scalar operations can be performed in parallel ... the rest can be
# pipelined").  A shallow depth reproduces the paper's observation that
# TensorDIMM's memory time is ~4.45× RecNMP's per query and ~15× at batch
# scale (Fig. 13).
VECTOR_PIPELINE_DEPTH = 1


class TensorDimmGatherEngine(GatherEngine):
    """Rank-striped NDP reduction with pipelined (serial) per-query adds."""

    name = "tensordimm"

    def __init__(
        self,
        memory_config: MemoryConfig = None,
        operator: ReductionOperator = SUM,
        vector_bytes: int = 512,
        link: HostLink = None,
    ) -> None:
        super().__init__(operator)
        self.memory_config = memory_config or MemoryConfig()
        self.vector_bytes = vector_bytes
        self.memory = MemorySystem(self.memory_config)
        self.placement = ColumnMajorPlacement(
            self.memory_config.geometry, vector_bytes
        )
        self.link = link or HostLink(
            channels=self.memory_config.geometry.channels
        )

    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        self.memory.reset()
        # TensorDIMM has no redundant-access elimination: every occurrence
        # of every index is read (§III-E).
        plan = plan_batch(queries, deduplicate=False)

        # Vectors stream through the in-order adder chain: vector k's slice
        # reads are issued only once vector k − VECTOR_PIPELINE_DEPTH has
        # fully arrived, modelling the chain's limited look-ahead.
        stats = None
        vector_finish: List[int] = []
        for position, index in enumerate(plan.reads):
            gate = position - VECTOR_PIPELINE_DEPTH
            issue = vector_finish[gate] if gate >= 0 else 0
            requests: List[ReadRequest] = [
                ReadRequest(
                    rank=r.rank,
                    bank=r.bank,
                    row=r.row,
                    column=r.column,
                    bytes_=r.bytes_,
                    issue_cycle=issue,
                    tag=r.tag,
                )
                for r in self.placement.requests_for(index)
            ]
            _, batch_stats = self.memory.execute(requests)
            vector_finish.append(batch_stats.finish_cycle)
            stats = batch_stats if stats is None else stats.merged_with(batch_stats)
        assert stats is not None
        memory_ns = DRAM_CLOCK.cycles_to_ns(stats.finish_cycle)

        # NMP compute: per query, q−1 chained reduction stages; queries
        # pipeline behind one another one stage apart.
        chained_stages = sum(max(0, len(q) - 1) for q in plan.queries)
        longest_chain = max(max(0, len(q) - 1) for q in plan.queries)
        ndp_cycles = (
            longest_chain * PIPELINE_STAGE_CYCLES
            + (len(plan.queries) - 1) * PIPELINE_STAGE_CYCLES
        )
        ndp_ns = PE_CLOCK.cycles_to_ns(ndp_cycles)

        bytes_to_core = len(plan.queries) * self.vector_bytes
        transfer_ns = self.link.transfer_ns(bytes_to_core)

        timing = GatherTiming(
            memory_ns=memory_ns,
            ndp_compute_ns=ndp_ns,
            core_compute_ns=0.0,
            transfer_ns=transfer_ns,
            # The adder chain overlaps slice arrival; the final stages and
            # the output transfer trail the last read.
            total_ns=memory_ns + ndp_ns + transfer_ns,
        )
        return GatherResult(
            vectors=functional_reduce(plan.queries, source, self.operator),
            timing=timing,
            memory_stats=stats,
            bytes_to_core=bytes_to_core,
            dram_reads=stats.reads,
            ndp_reduced_vectors=chained_stages,
            core_reduced_vectors=0,
        )
