"""Adapter exposing the FAFNIR engine through the baseline interface.

The evaluation benches compare engines through the common
:class:`~repro.baselines.base.GatherEngine` API; this adapter maps
:class:`~repro.core.engine.LookupStats` onto a :class:`GatherTiming`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import (
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    VectorSource,
)
from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.operators import ReductionOperator, SUM
from repro.memory.config import MemoryConfig


class FafnirGatherEngine(GatherEngine):
    """FAFNIR behind the common gather-engine interface."""

    name = "fafnir"

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
        operator: ReductionOperator = SUM,
        link: Optional[HostLink] = None,
        deduplicate: bool = True,
    ) -> None:
        super().__init__(operator)
        self.engine = FafnirEngine(
            config=config, operator=operator, memory_config=memory_config
        )
        self.link = link or HostLink(
            channels=self.engine.memory.config.geometry.channels
        )
        self.deduplicate = deduplicate

    @property
    def config(self) -> FafnirConfig:
        return self.engine.config

    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        hardware_batch = self.config.batch_size
        chunks = [
            queries[start : start + hardware_batch]
            for start in range(0, len(queries), hardware_batch)
        ]

        vectors = []
        memory_stats = None
        memory_ns = 0.0
        in_tree_ns = 0.0
        bytes_to_core = 0
        dram_reads = 0
        ndp_reduced = 0
        for chunk in chunks:
            result = self.engine.run_batch(
                chunk, source, deduplicate=self.deduplicate
            )
            stats = result.stats
            vectors.extend(result.vectors)
            memory_stats = (
                stats.memory
                if memory_stats is None
                else memory_stats.merged_with(stats.memory)
            )
            memory_ns += self.config.pe_clock.cycles_to_ns(
                stats.memory_latency_pe_cycles
            )
            in_tree_ns += stats.latency_ns(self.config)
            bytes_to_core += stats.output_bytes
            dram_reads += stats.memory.reads
            ndp_reduced += stats.total_work.reduces

        transfer_ns = self.link.transfer_ns(bytes_to_core)
        assert memory_stats is not None
        timing = GatherTiming(
            memory_ns=memory_ns,
            ndp_compute_ns=max(0.0, in_tree_ns - memory_ns),
            core_compute_ns=0.0,
            transfer_ns=transfer_ns,
            # Tree compute overlaps memory (messages flow as reads finish);
            # in_tree_ns already covers the overlap chain end-to-end.
            total_ns=in_tree_ns + transfer_ns,
        )
        return GatherResult(
            vectors=vectors,
            timing=timing,
            memory_stats=memory_stats,
            bytes_to_core=bytes_to_core,
            dram_reads=dram_reads,
            ndp_reduced_vectors=ndp_reduced,
            core_reduced_vectors=0,
        )
