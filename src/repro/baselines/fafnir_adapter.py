"""Adapter exposing the FAFNIR engine through the baseline interface.

The evaluation benches compare engines through the common
:class:`~repro.baselines.base.GatherEngine` API; this adapter maps
:class:`~repro.core.engine.LookupStats` onto a :class:`GatherTiming`.

Requests larger than one hardware batch are chunked and streamed through
:meth:`FafnirEngine.run_batches`: with ``pipeline=True`` (default) the host
overlaps chunk *k*'s memory phase with chunk *k−1*'s tree traversal, so the
reported in-tree time is the pipelined makespan rather than the serial sum
(paper §IV's host/tree pipelining).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import (
    GatherEngine,
    GatherResult,
    GatherTiming,
    HostLink,
    VectorSource,
)
from repro.core.config import FafnirConfig
from repro.core.engine import FafnirEngine
from repro.core.operators import ReductionOperator, SUM
from repro.core.pe import KERNEL_VECTOR
from repro.memory.config import MemoryConfig
from repro.obs.tracer import Tracer


class FafnirGatherEngine(GatherEngine):
    """FAFNIR behind the common gather-engine interface."""

    name = "fafnir"

    def __init__(
        self,
        config: Optional[FafnirConfig] = None,
        memory_config: Optional[MemoryConfig] = None,
        operator: ReductionOperator = SUM,
        link: Optional[HostLink] = None,
        deduplicate: bool = True,
        pipeline: bool = True,
        kernel: str = KERNEL_VECTOR,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(operator)
        self.engine = FafnirEngine(
            config=config,
            operator=operator,
            memory_config=memory_config,
            kernel=kernel,
            tracer=tracer,
        )
        self.link = link or HostLink(
            channels=self.engine.memory.config.geometry.channels
        )
        self.deduplicate = deduplicate
        self.pipeline = pipeline

    @property
    def config(self) -> FafnirConfig:
        return self.engine.config

    def lookup(
        self, queries: Sequence[Sequence[int]], source: VectorSource
    ) -> GatherResult:
        hardware_batch = self.config.batch_size
        chunks = [
            queries[start : start + hardware_batch]
            for start in range(0, len(queries), hardware_batch)
        ]

        multi = self.engine.run_batches(
            chunks, source, deduplicate=self.deduplicate, pipeline=self.pipeline
        )

        bytes_to_core = 0
        dram_reads = 0
        ndp_reduced = 0
        memory_pe_cycles = 0
        for result in multi.results:
            stats = result.stats
            bytes_to_core += stats.output_bytes
            dram_reads += stats.memory.reads
            ndp_reduced += stats.total_work.reduces
            memory_pe_cycles += stats.memory_latency_pe_cycles

        pe_clock = self.config.pe_clock
        memory_ns = pe_clock.cycles_to_ns(memory_pe_cycles)
        # Pipelined makespan: chunk k's reads overlap chunk k−1's tree
        # traversal, so in-tree time is max completion, not the serial sum.
        in_tree_ns = pe_clock.cycles_to_ns(
            multi.pipeline.pipelined_latency_pe_cycles
        )
        transfer_ns = self.link.transfer_ns(bytes_to_core)
        timing = GatherTiming(
            memory_ns=memory_ns,
            ndp_compute_ns=max(0.0, in_tree_ns - memory_ns),
            core_compute_ns=0.0,
            transfer_ns=transfer_ns,
            total_ns=in_tree_ns + transfer_ns,
        )
        return GatherResult(
            vectors=multi.vectors,
            timing=timing,
            memory_stats=multi.memory_stats,
            bytes_to_core=bytes_to_core,
            dram_reads=dram_reads,
            ndp_reduced_vectors=ndp_reduced,
            core_reduced_vectors=0,
        )
