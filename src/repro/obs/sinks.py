"""Event sinks: in-memory for tests, JSONL streams, Chrome trace JSON.

All sinks implement the two-method :class:`Sink` protocol (``record`` one
event, ``close`` to flush).  The Chrome exporter follows the ``trace_event``
format (the JSON Object Format with a ``traceEvents`` array), which both
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) load directly:

* the tree is one "process" (pid 1) with one "thread" per PE, so PE
  reduce/forward work renders as per-PE duration slices by level;
* the memory system is a second process (pid 2) with one thread per rank,
  so DRAM reads render as per-rank bus occupancy;
* instant events (leaf injects, query completions, stalls) appear as
  markers on the owning track.

Timestamps are microseconds: each event's cycle count is converted through
the clock of its domain, so PE-cycle and DRAM-cycle events line up on one
real-time axis.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

import numpy as np

from repro.clocks import Clock, DRAM_CLOCK, PE_CLOCK
from repro.obs.events import (
    CLOCK_DRAM,
    CLOCK_PE,
    EVENT_KINDS,
    FIFO_ENQUEUE,
    KIND_CODES,
    MAX_PACKED_ARGS,
    MEM_READ_COMPLETE,
    MEM_READ_ISSUE,
    PACKED_SCHEMAS,
    PE_FORWARD,
    PE_MERGE,
    PE_REDUCE,
    TraceEvent,
)


class Sink:
    """Interface every sink implements; base methods are no-ops."""

    def record(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class InMemorySink(Sink):
    """Stores events in a list — the sink tests and metrics build on."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class ColumnarSink(Sink):
    """Ring-buffer sink recording events into preallocated typed arrays.

    The in-memory tracing tax of :class:`InMemorySink` is dominated by
    constructing one :class:`TraceEvent` (dataclass + args dict) per
    emission.  This sink instead accepts the *fields* of an event through
    the packed fast path (:meth:`record_packed` / :meth:`record_rows`,
    driven by ``Tracer.emit_packed`` / ``Tracer.emit_rows``) and stores
    them as plain integers in contiguous NumPy columns; ``TraceEvent``
    objects are materialized only when the recorded stream is *read*
    (:attr:`events` / :meth:`to_events`).

    **Ring semantics**: the buffer holds the most recent ``capacity``
    events.  Once more than ``capacity`` events have been recorded the
    oldest slots are overwritten and :attr:`dropped` counts what was lost;
    materialization always returns the retained window oldest-first.

    Events whose args don't fit a packed schema (batch/fault/pipeline
    events — rare, batch-scoped) are kept as objects in a side table and
    spliced back in order on read, so a columnar recording materializes
    exactly the stream an :class:`InMemorySink` would have captured.
    """

    #: Capability flag the Tracer checks before using the packed fast path.
    supports_packed = True

    _UNSET = -1  # column sentinel for "field not set" (pe/level/rank)
    _OBJECT = -2  # nargs marker: slot holds a side-table object reference

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._kind = np.zeros(capacity, dtype=np.int16)
        self._cycle = np.zeros(capacity, dtype=np.int64)
        self._dram = np.zeros(capacity, dtype=bool)
        self._pe = np.full(capacity, self._UNSET, dtype=np.int32)
        self._level = np.full(capacity, self._UNSET, dtype=np.int16)
        self._rank = np.full(capacity, self._UNSET, dtype=np.int32)
        self._args = np.zeros((capacity, MAX_PACKED_ARGS), dtype=np.int64)
        self._nargs = np.zeros(capacity, dtype=np.int8)
        self._objects: Dict[int, TraceEvent] = {}
        self._total = 0

    # -- write paths --------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Generic object path (kinds without a packed schema)."""
        slot = self._claim()
        self._nargs[slot] = self._OBJECT
        self._args[slot, 0] = self._total - 1
        self._objects[self._total - 1] = event

    def record_packed(
        self,
        kind: str,
        cycle: int,
        clock: str,
        pe: Optional[int],
        level: Optional[int],
        rank: Optional[int],
        args: tuple,
    ) -> None:
        """One packed event: scalar fields only, no TraceEvent constructed."""
        total = self._total
        slot = total % self.capacity
        if self._objects and total >= self.capacity:
            self._evict(slot, slot + 1)
        self._total = total + 1
        self._kind[slot] = KIND_CODES[kind]
        self._cycle[slot] = cycle
        self._dram[slot] = clock == CLOCK_DRAM
        self._pe[slot] = self._UNSET if pe is None else pe
        self._level[slot] = self._UNSET if level is None else level
        self._rank[slot] = self._UNSET if rank is None else rank
        n = len(args)
        self._nargs[slot] = n
        if n == 1:
            # The dominant schemas carry one int — skip the slice set-up.
            self._args[slot, 0] = args[0]
        elif n:
            self._args[slot, :n] = args

    def record_rows(
        self,
        kind_codes: np.ndarray,
        cycles: np.ndarray,
        clock: str,
        pe: Optional[int],
        level: Optional[int],
        arg0: Optional[np.ndarray],
    ) -> None:
        """Slab write: many single-int-arg events sharing pe/level/clock.

        ``kind_codes`` may interleave kinds (e.g. reduce/forward rows in
        scan order) — row order is preserved exactly.  This is the bulk
        path the SoA sweep uses to trace a whole tree level per call.
        """
        count = len(kind_codes)
        start = 0
        while start < count:
            cursor = self._total % self.capacity
            room = min(count - start, self.capacity - cursor)
            stop = start + room
            window = slice(cursor, cursor + room)
            self._evict(cursor, cursor + room)
            self._kind[window] = kind_codes[start:stop]
            self._cycle[window] = cycles[start:stop]
            self._dram[window] = clock == CLOCK_DRAM
            self._pe[window] = self._UNSET if pe is None else pe
            self._level[window] = self._UNSET if level is None else level
            self._rank[window] = self._UNSET
            if arg0 is not None:
                self._args[window, 0] = arg0[start:stop]
                self._nargs[window] = 1
            else:
                self._nargs[window] = 0
            self._total += room
            start = stop

    def _claim(self) -> int:
        slot = self._total % self.capacity
        self._evict(slot, slot + 1)
        self._total += 1
        return slot

    def _evict(self, start: int, stop: int) -> None:
        """Release side-table objects held by slots about to be overwritten."""
        if self._total < self.capacity or not self._objects:
            return
        for slot in range(start, stop):
            if self._nargs[slot] == self._OBJECT:
                self._objects.pop(int(self._args[slot, 0]), None)

    # -- read paths ---------------------------------------------------------
    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including overwritten ones)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events lost to ring overwrite."""
        return max(0, self._total - self.capacity)

    def to_events(self) -> List[TraceEvent]:
        """Materialize the retained window as TraceEvents, oldest first."""
        live = len(self)
        if not live:
            return []
        if self._total <= self.capacity:
            order = np.arange(live)
        else:
            cursor = self._total % self.capacity
            order = np.concatenate(
                [np.arange(cursor, self.capacity), np.arange(cursor)]
            )
        kinds = self._kind[order].tolist()
        cycles = self._cycle[order].tolist()
        drams = self._dram[order].tolist()
        pes = self._pe[order].tolist()
        levels = self._level[order].tolist()
        ranks = self._rank[order].tolist()
        nargs = self._nargs[order].tolist()
        argrows = self._args[order].tolist()
        events: List[TraceEvent] = []
        unset = self._UNSET
        for i in range(live):
            n = nargs[i]
            if n == self._OBJECT:
                events.append(self._objects[argrows[i][0]])
                continue
            kind = EVENT_KINDS[kinds[i]]
            schema = PACKED_SCHEMAS[kind]
            row = argrows[i]
            events.append(
                TraceEvent(
                    kind,
                    cycle=cycles[i],
                    clock=CLOCK_DRAM if drams[i] else CLOCK_PE,
                    pe=None if pes[i] == unset else pes[i],
                    level=None if levels[i] == unset else levels[i],
                    rank=None if ranks[i] == unset else ranks[i],
                    args={
                        key: decode(row[j])
                        for j, (key, decode) in enumerate(schema[:n])
                    },
                )
            )
        return events

    @property
    def events(self) -> List[TraceEvent]:
        """Materialized view (same shape as ``InMemorySink.events``)."""
        return self.to_events()

    def clear(self) -> None:
        self._total = 0
        self._objects.clear()


class JsonlSink(Sink):
    """Streams one compact JSON object per event, newline-delimited."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "w")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False

    def record(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    @staticmethod
    def load(path: str) -> List[TraceEvent]:
        """Read a JSONL stream back into events (replay / analysis)."""
        events: List[TraceEvent] = []
        with open(path) as stream:
            for line in stream:
                line = line.strip()
                if line:
                    events.append(TraceEvent.from_dict(json.loads(line)))
        return events


# --- Chrome trace_event conversion ----------------------------------------

_TREE_PID = 1
_MEMORY_PID = 2
_HOST_PID = 3


def _ts_us(event: TraceEvent, pe_clock: Clock, dram_clock: Clock) -> float:
    clock = dram_clock if event.clock == CLOCK_DRAM else pe_clock
    return clock.cycles_to_ns(event.cycle) / 1000.0


def chrome_trace_json(
    events: List[TraceEvent],
    pe_clock: Clock = PE_CLOCK,
    dram_clock: Clock = DRAM_CLOCK,
) -> Dict[str, Any]:
    """Convert an event stream to a Chrome ``trace_event`` JSON object.

    Duration-bearing kinds (memory reads via their ``start``/``issue``
    args, PE ops via ``dur_cycles``) become complete ("X") slices; the
    rest become instant ("i") markers.  Every event's source fields ride
    along in ``args`` so nothing recorded is lost in export.
    """
    trace_events: List[Dict[str, Any]] = []
    seen_pe_threads: Dict[int, Optional[int]] = {}
    seen_rank_threads: set = set()

    for event in events:
        ts = _ts_us(event, pe_clock, dram_clock)
        clock = dram_clock if event.clock == CLOCK_DRAM else pe_clock
        args = dict(event.args)
        if event.level is not None:
            args["level"] = event.level
        if event.rank is not None:
            args["rank"] = event.rank

        if event.kind in (MEM_READ_ISSUE, MEM_READ_COMPLETE):
            pid = _MEMORY_PID
            tid = (event.rank or 0) + 1
            seen_rank_threads.add(event.rank or 0)
        elif event.pe is not None:
            pid = _TREE_PID
            tid = event.pe + 1
            seen_pe_threads.setdefault(event.pe, event.level)
        else:
            pid = _HOST_PID
            tid = 1

        record: Dict[str, Any] = {
            "name": event.kind,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if event.kind == MEM_READ_COMPLETE and "start_cycle" in event.args:
            start_us = clock.cycles_to_ns(event.args["start_cycle"]) / 1000.0
            record.update(ph="X", ts=start_us, dur=max(0.0, ts - start_us))
        elif event.kind in (PE_REDUCE, PE_FORWARD, PE_MERGE) and args.get(
            "dur_cycles"
        ):
            dur_us = clock.cycles_to_ns(args["dur_cycles"]) / 1000.0
            record.update(ph="X", ts=max(0.0, ts - dur_us), dur=dur_us)
        elif event.kind == FIFO_ENQUEUE and "depth" in event.args:
            # Counter events chart FIFO occupancy over time in the viewer.
            record.update(ph="C", ts=ts)
            record["args"] = {"depth": event.args["depth"]}
            record["name"] = f"fifo_depth_pe{event.pe}_side{args.get('fifo', 0)}"
        else:
            record.update(ph="i", ts=ts, s="t")
        trace_events.append(record)

    metadata: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _TREE_PID,
         "args": {"name": "fafnir tree"}},
        {"name": "process_name", "ph": "M", "pid": _MEMORY_PID,
         "args": {"name": "memory system"}},
        {"name": "process_name", "ph": "M", "pid": _HOST_PID,
         "args": {"name": "host"}},
    ]
    for pe, level in sorted(seen_pe_threads.items()):
        label = f"PE{pe}" if level is None else f"PE{pe} (level {level})"
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": _TREE_PID,
             "tid": pe + 1, "args": {"name": label}}
        )
    for rank in sorted(seen_rank_threads):
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": _MEMORY_PID,
             "tid": rank + 1, "args": {"name": f"rank {rank}"}}
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "pe_clock_mhz": pe_clock.freq_mhz,
            "dram_clock_mhz": dram_clock.freq_mhz,
        },
    }


class ChromeTraceSink(Sink):
    """Buffers events and writes Chrome ``trace_event`` JSON on close."""

    def __init__(
        self,
        path: str,
        pe_clock: Clock = PE_CLOCK,
        dram_clock: Clock = DRAM_CLOCK,
    ) -> None:
        self.path = path
        self.pe_clock = pe_clock
        self.dram_clock = dram_clock
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        with open(self.path, "w") as stream:
            json.dump(
                chrome_trace_json(self._events, self.pe_clock, self.dram_clock),
                stream,
            )
