"""Event sinks: in-memory for tests, JSONL streams, Chrome trace JSON.

All sinks implement the two-method :class:`Sink` protocol (``record`` one
event, ``close`` to flush).  The Chrome exporter follows the ``trace_event``
format (the JSON Object Format with a ``traceEvents`` array), which both
``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) load directly:

* the tree is one "process" (pid 1) with one "thread" per PE, so PE
  reduce/forward work renders as per-PE duration slices by level;
* the memory system is a second process (pid 2) with one thread per rank,
  so DRAM reads render as per-rank bus occupancy;
* instant events (leaf injects, query completions, stalls) appear as
  markers on the owning track.

Timestamps are microseconds: each event's cycle count is converted through
the clock of its domain, so PE-cycle and DRAM-cycle events line up on one
real-time axis.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, List, Optional, Union

from repro.clocks import Clock, DRAM_CLOCK, PE_CLOCK
from repro.obs.events import (
    CLOCK_DRAM,
    FIFO_ENQUEUE,
    MEM_READ_COMPLETE,
    MEM_READ_ISSUE,
    PE_FORWARD,
    PE_MERGE,
    PE_REDUCE,
    TraceEvent,
)


class Sink:
    """Interface every sink implements; base methods are no-ops."""

    def record(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class InMemorySink(Sink):
    """Stores events in a list — the sink tests and metrics build on."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(Sink):
    """Streams one compact JSON object per event, newline-delimited."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self._file: IO[str] = open(destination, "w")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False

    def record(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._file.write("\n")

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()

    @staticmethod
    def load(path: str) -> List[TraceEvent]:
        """Read a JSONL stream back into events (replay / analysis)."""
        events: List[TraceEvent] = []
        with open(path) as stream:
            for line in stream:
                line = line.strip()
                if line:
                    events.append(TraceEvent.from_dict(json.loads(line)))
        return events


# --- Chrome trace_event conversion ----------------------------------------

_TREE_PID = 1
_MEMORY_PID = 2
_HOST_PID = 3


def _ts_us(event: TraceEvent, pe_clock: Clock, dram_clock: Clock) -> float:
    clock = dram_clock if event.clock == CLOCK_DRAM else pe_clock
    return clock.cycles_to_ns(event.cycle) / 1000.0


def chrome_trace_json(
    events: List[TraceEvent],
    pe_clock: Clock = PE_CLOCK,
    dram_clock: Clock = DRAM_CLOCK,
) -> Dict[str, Any]:
    """Convert an event stream to a Chrome ``trace_event`` JSON object.

    Duration-bearing kinds (memory reads via their ``start``/``issue``
    args, PE ops via ``dur_cycles``) become complete ("X") slices; the
    rest become instant ("i") markers.  Every event's source fields ride
    along in ``args`` so nothing recorded is lost in export.
    """
    trace_events: List[Dict[str, Any]] = []
    seen_pe_threads: Dict[int, Optional[int]] = {}
    seen_rank_threads: set = set()

    for event in events:
        ts = _ts_us(event, pe_clock, dram_clock)
        clock = dram_clock if event.clock == CLOCK_DRAM else pe_clock
        args = dict(event.args)
        if event.level is not None:
            args["level"] = event.level
        if event.rank is not None:
            args["rank"] = event.rank

        if event.kind in (MEM_READ_ISSUE, MEM_READ_COMPLETE):
            pid = _MEMORY_PID
            tid = (event.rank or 0) + 1
            seen_rank_threads.add(event.rank or 0)
        elif event.pe is not None:
            pid = _TREE_PID
            tid = event.pe + 1
            seen_pe_threads.setdefault(event.pe, event.level)
        else:
            pid = _HOST_PID
            tid = 1

        record: Dict[str, Any] = {
            "name": event.kind,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if event.kind == MEM_READ_COMPLETE and "start_cycle" in event.args:
            start_us = clock.cycles_to_ns(event.args["start_cycle"]) / 1000.0
            record.update(ph="X", ts=start_us, dur=max(0.0, ts - start_us))
        elif event.kind in (PE_REDUCE, PE_FORWARD, PE_MERGE) and args.get(
            "dur_cycles"
        ):
            dur_us = clock.cycles_to_ns(args["dur_cycles"]) / 1000.0
            record.update(ph="X", ts=max(0.0, ts - dur_us), dur=dur_us)
        elif event.kind == FIFO_ENQUEUE and "depth" in event.args:
            # Counter events chart FIFO occupancy over time in the viewer.
            record.update(ph="C", ts=ts)
            record["args"] = {"depth": event.args["depth"]}
            record["name"] = f"fifo_depth_pe{event.pe}_side{args.get('fifo', 0)}"
        else:
            record.update(ph="i", ts=ts, s="t")
        trace_events.append(record)

    metadata: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _TREE_PID,
         "args": {"name": "fafnir tree"}},
        {"name": "process_name", "ph": "M", "pid": _MEMORY_PID,
         "args": {"name": "memory system"}},
        {"name": "process_name", "ph": "M", "pid": _HOST_PID,
         "args": {"name": "host"}},
    ]
    for pe, level in sorted(seen_pe_threads.items()):
        label = f"PE{pe}" if level is None else f"PE{pe} (level {level})"
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": _TREE_PID,
             "tid": pe + 1, "args": {"name": label}}
        )
    for rank in sorted(seen_rank_threads):
        metadata.append(
            {"name": "thread_name", "ph": "M", "pid": _MEMORY_PID,
             "tid": rank + 1, "args": {"name": f"rank {rank}"}}
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "pe_clock_mhz": pe_clock.freq_mhz,
            "dram_clock_mhz": dram_clock.freq_mhz,
        },
    }


class ChromeTraceSink(Sink):
    """Buffers events and writes Chrome ``trace_event`` JSON on close."""

    def __init__(
        self,
        path: str,
        pe_clock: Clock = PE_CLOCK,
        dram_clock: Clock = DRAM_CLOCK,
    ) -> None:
        self.path = path
        self.pe_clock = pe_clock
        self.dram_clock = dram_clock
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        with open(self.path, "w") as stream:
            json.dump(
                chrome_trace_json(self._events, self.pe_clock, self.dram_clock),
                stream,
            )
