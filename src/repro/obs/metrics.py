"""Counters, gauges, and percentile histograms over recorded events.

A :class:`MetricsRegistry` is a flat namespace of named instruments:

* :class:`Counter` — monotonically increasing totals (reduce counts,
  bytes read);
* :class:`Gauge` — last-value-plus-high-water (FIFO depths);
* :class:`Histogram` — full-distribution recordings with nearest-rank
  percentiles (per-query latency p50/p95/p99).

:func:`metrics_from_events` derives the standard metric set from an
in-memory trace — the same numbers the ``repro.cli trace`` subcommand
prints, and the bridge the benchmarks use to cross-check event streams
against :class:`~repro.core.engine.LookupStats` aggregates.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import (
    BREAKER_OPENED,
    CACHE_HIT,
    CACHE_MISS,
    FAULT_DETECTED,
    FAULT_INJECTED,
    FIFO_ENQUEUE,
    HEDGE_ISSUED,
    MEM_READ_COMPLETE,
    MSG_DROPPED,
    MSG_RETRANSMITTED,
    PE_FORWARD,
    PE_MERGE,
    PE_REDUCE,
    PLACEMENT_DECIDED,
    QUERY_COMPLETE,
    QUERY_DEGRADED,
    REQUEST_SHED,
    RETRY_ISSUED,
    SHARD_MSG_SENT,
    SHARD_REDISPATCHED,
    SHARD_REDUCED,
    TraceEvent,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A sampled value that also remembers its high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """Recorded samples with nearest-rank percentiles.

    **Empty-histogram behavior** (uniform across every statistic): with no
    recorded samples, ``count`` is 0 and ``mean``, ``max``, and
    ``percentile(p)`` all return ``0.0`` — never an exception.  Callers
    that need to distinguish "no data" from "all zeros" must check
    ``count`` first.

    The sorted sample list is computed at most once per flush: ``record``
    marks the cached order dirty and every percentile read reuses the
    cache, so a snapshot asking for p50/p95/p99 sorts once, not three
    times.
    """

    __slots__ = ("_values", "_sorted")

    def __init__(self) -> None:
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        self._values.append(value)
        self._sorted = None

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean; ``0.0`` when no samples were recorded."""
        return sum(self._values) / len(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        """Largest sample; ``0.0`` when no samples were recorded."""
        return max(self._values) if self._values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100].

        Returns ``0.0`` when no samples were recorded (same convention as
        ``mean``/``max``).  Repeated calls between ``record``\\ s reuse the
        cached sort.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self._values:
            return 0.0
        ordered = self._ordered()
        rank = max(1, -(-int(p * len(ordered)) // 100))  # ceil(p/100 · n)
        return ordered[min(rank, len(ordered)) - 1]


class MetricsRegistry:
    """A flat namespace of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data dump of every instrument (JSON-compatible)."""
        return {
            "counters": self.counters(),
            "gauges": {
                name: {"value": g.value, "high_water": g.high_water}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "mean": h.mean,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                    "p99": h.percentile(99),
                }
                for name, h in sorted(self._histograms.items())
            },
        }


def metrics_from_events(
    events: Iterable[TraceEvent],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Derive the standard metric set from a recorded event stream.

    Produces, per the observability contract in ``docs/architecture.md``:

    * ``events.<kind>`` counters for every recorded kind;
    * ``pe.reduces.level<L>`` / ``pe.forwards.level<L>`` per-level
      occupancy counters (matching ``core/stats.py`` level aggregation);
    * ``fifo.depth.pe<P>.side<S>`` gauges whose high-water marks are the
      per-FIFO peak occupancies;
    * ``memory.bytes.rank<R>`` / ``memory.reads.rank<R>`` per-rank traffic
      counters and a ``memory.finish_cycle`` gauge (DRAM cycles) for
      bandwidth arithmetic;
    * a ``query.latency_pe_cycles`` histogram over query completions;
    * ``faults.injected.<type>`` / ``faults.detected.<type>`` /
      ``faults.unrecovered.<type>`` counters, ``faults.retries`` /
      ``faults.redispatches`` totals, and ``query.status.<status>``
      counters from graceful-degradation runs;
    * ``comm.messages`` / ``comm.bytes`` / ``comm.segments`` totals and a
      ``comm.message_bytes`` histogram from cross-shard reduction runs,
      plus ``comm.reduces`` merge-step counts;
    * ``cache.hits`` / ``cache.misses`` totals with per-rank
      ``cache.hits.rank<R>`` / ``cache.misses.rank<R>`` breakdowns from
      hot-index tier runs, and ``placement.decisions`` counting
      placement-optimizer assignments;
    * resilience counters: ``comm.drops`` / ``comm.retransmits`` (with
      ``comm.retransmits.escalated``) from lossy-link runs,
      ``serving.shed`` from admission control, ``breaker.opens`` (with
      per-rank ``breaker.opens.rank<R>``) from the circuit breaker, and
      ``hedge.issued`` / ``hedge.wins`` / ``hedge.saved_cycles`` /
      ``hedge.wasted_cycles`` from straggler hedging.
    """
    metrics = registry if registry is not None else MetricsRegistry()
    for event in events:
        metrics.counter(f"events.{event.kind}").inc()
        if event.kind in (PE_REDUCE, PE_FORWARD, PE_MERGE):
            if event.level is not None:
                stem = {
                    PE_REDUCE: "reduces",
                    PE_FORWARD: "forwards",
                    PE_MERGE: "merges",
                }[event.kind]
                metrics.counter(f"pe.{stem}.level{event.level}").inc()
        elif event.kind == FIFO_ENQUEUE:
            side = event.args.get("fifo", 0)
            gauge = metrics.gauge(f"fifo.depth.pe{event.pe}.side{side}")
            gauge.set(event.args.get("depth", 0))
        elif event.kind == MEM_READ_COMPLETE:
            rank = event.rank if event.rank is not None else -1
            metrics.counter(f"memory.reads.rank{rank}").inc()
            metrics.counter(f"memory.bytes.rank{rank}").inc(
                event.args.get("bytes", 0)
            )
            metrics.gauge("memory.finish_cycle").set(event.cycle)
        elif event.kind == QUERY_COMPLETE:
            metrics.histogram("query.latency_pe_cycles").record(event.cycle)
        elif event.kind == FAULT_INJECTED:
            fault = event.args.get("fault", "unknown")
            metrics.counter(f"faults.injected.{fault}").inc()
        elif event.kind == FAULT_DETECTED:
            fault = event.args.get("fault", "unknown")
            metrics.counter(f"faults.detected.{fault}").inc()
            if event.args.get("fatal"):
                metrics.counter(f"faults.unrecovered.{fault}").inc()
        elif event.kind == RETRY_ISSUED:
            metrics.counter("faults.retries").inc()
        elif event.kind == SHARD_REDISPATCHED:
            metrics.counter("faults.redispatches").inc()
        elif event.kind == QUERY_DEGRADED:
            status = event.args.get("status", "degraded")
            metrics.counter(f"query.status.{status}").inc()
        elif event.kind == SHARD_MSG_SENT:
            metrics.counter("comm.messages").inc()
            metrics.counter("comm.bytes").inc(event.args.get("bytes", 0))
            metrics.counter("comm.segments").inc(event.args.get("segments", 0))
            metrics.histogram("comm.message_bytes").record(
                event.args.get("bytes", 0)
            )
        elif event.kind == SHARD_REDUCED:
            metrics.counter("comm.reduces").inc()
        elif event.kind == CACHE_HIT:
            metrics.counter("cache.hits").inc()
            if event.rank is not None:
                metrics.counter(f"cache.hits.rank{event.rank}").inc()
        elif event.kind == CACHE_MISS:
            metrics.counter("cache.misses").inc()
            if event.rank is not None:
                metrics.counter(f"cache.misses.rank{event.rank}").inc()
        elif event.kind == PLACEMENT_DECIDED:
            metrics.counter("placement.decisions").inc()
        elif event.kind == MSG_DROPPED:
            metrics.counter("comm.drops").inc()
        elif event.kind == MSG_RETRANSMITTED:
            metrics.counter("comm.retransmits").inc()
            if event.args.get("escalated"):
                metrics.counter("comm.retransmits.escalated").inc()
        elif event.kind == REQUEST_SHED:
            metrics.counter("serving.shed").inc()
        elif event.kind == BREAKER_OPENED:
            metrics.counter("breaker.opens").inc()
            if event.rank is not None:
                metrics.counter(f"breaker.opens.rank{event.rank}").inc()
        elif event.kind == HEDGE_ISSUED:
            metrics.counter("hedge.issued").inc()
            if event.args.get("won"):
                metrics.counter("hedge.wins").inc()
            metrics.counter("hedge.saved_cycles").inc(
                int(event.args.get("saved", 0))
            )
            metrics.counter("hedge.wasted_cycles").inc(
                int(event.args.get("wasted", 0))
            )
    return metrics


def per_level_counts(
    events: Iterable[TraceEvent], kind: str = PE_REDUCE
) -> Dict[int, int]:
    """Event counts of one PE-op kind grouped by tree level."""
    counts: Dict[int, int] = {}
    for event in events:
        if event.kind == kind and event.level is not None:
            counts[event.level] = counts.get(event.level, 0) + 1
    return counts
