"""The event dispatcher and its zero-overhead disabled default.

Instrumented code holds a :class:`Tracer` and guards every emission with
its ``enabled`` flag::

    if tracer.enabled:
        tracer.emit(TraceEvent(PE_REDUCE, cycle=ready, pe=3, level=1))

With the default :data:`NULL_TRACER` the guard is a single attribute read
and no event object is ever constructed — the hot kernels pay nothing
(``benchmarks/bench_engine_hotpath.py`` holds the speedup floor with the
no-op tracer in place).  A :class:`Tracer` with one or more sinks flips
``enabled`` on and fans every event out to each sink.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.obs.events import TraceEvent
from repro.obs.sinks import Sink


class Tracer:
    """Dispatches :class:`TraceEvent` records to the attached sinks."""

    __slots__ = ("sinks", "enabled")

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks: List[Sink] = list(sinks)
        self.enabled = bool(self.sinks)

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)
        self.enabled = True

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record(event)

    def close(self) -> None:
        """Flush and close every sink (file-backed sinks write here)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _NullTracer(Tracer):
    """The shared disabled tracer; refuses sinks so it stays inert."""

    def add_sink(self, sink: Sink) -> None:
        raise RuntimeError(
            "NULL_TRACER is the shared disabled tracer; construct a "
            "Tracer([...]) instead of attaching sinks to it"
        )

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guarded
        pass


NULL_TRACER = _NullTracer()
