"""The event dispatcher and its zero-overhead disabled default.

Instrumented code holds a :class:`Tracer` and guards every emission with
its ``enabled`` flag::

    if tracer.enabled:
        tracer.emit(TraceEvent(PE_REDUCE, cycle=ready, pe=3, level=1))

With the default :data:`NULL_TRACER` the guard is a single attribute read
and no event object is ever constructed — the hot kernels pay nothing
(``benchmarks/bench_engine_hotpath.py`` holds the speedup floor with the
no-op tracer in place).  A :class:`Tracer` with one or more sinks flips
``enabled`` on and fans every event out to each sink.

Hot emit sites use the **packed fast path**: :meth:`Tracer.emit_packed`
takes the event's fields as scalars (kind, cycle, location, an int tuple
of args per :data:`~repro.obs.events.PACKED_SCHEMAS`).  When every
attached sink is packed-capable (``supports_packed``, e.g.
:class:`~repro.obs.sinks.ColumnarSink`) the fields go straight into
typed columns and no :class:`TraceEvent` or args dict is ever built;
otherwise the tracer materializes the event once and dispatches it
through :meth:`emit`, so object sinks observe exactly the same stream.
:meth:`emit_rows` is the bulk variant — whole arrays of single-int-arg
events (a tree level's reduce/forward rows) recorded in one call.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.obs.events import (
    CLOCK_PE,
    EVENT_KINDS,
    PACKED_SCHEMAS,
    TraceEvent,
)
from repro.obs.sinks import Sink


class Tracer:
    """Dispatches :class:`TraceEvent` records to the attached sinks."""

    __slots__ = ("sinks", "enabled", "all_packed")

    def __init__(self, sinks: Iterable[Sink] = ()) -> None:
        self.sinks: List[Sink] = list(sinks)
        self.enabled = bool(self.sinks)
        self.all_packed = bool(self.sinks) and all(
            getattr(sink, "supports_packed", False) for sink in self.sinks
        )

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)
        self.enabled = True
        self.all_packed = all(
            getattr(s, "supports_packed", False) for s in self.sinks
        )

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.record(event)

    def emit_packed(
        self,
        kind: str,
        cycle: int,
        clock: str = CLOCK_PE,
        pe: Optional[int] = None,
        level: Optional[int] = None,
        rank: Optional[int] = None,
        args: tuple = (),
    ) -> None:
        """One event given as scalar fields (see module docstring).

        ``args`` must align with ``PACKED_SCHEMAS[kind]`` (a prefix is
        allowed).  Callers guard on ``enabled`` exactly like :meth:`emit`.
        """
        if self.all_packed:
            for sink in self.sinks:
                sink.record_packed(kind, cycle, clock, pe, level, rank, args)
            return
        schema = PACKED_SCHEMAS[kind]
        event = TraceEvent(
            kind,
            cycle=cycle,
            clock=clock,
            pe=pe,
            level=level,
            rank=rank,
            args={
                key: decode(value)
                for (key, decode), value in zip(schema, args)
            },
        )
        for sink in self.sinks:
            sink.record(event)

    def emit_rows(
        self,
        kind_codes: "Sequence[int]",
        cycles: "Sequence[int]",
        pe: Optional[int] = None,
        level: Optional[int] = None,
        arg0: "Optional[Sequence[int]]" = None,
        clock: str = CLOCK_PE,
    ) -> None:
        """Bulk emission of single-int-arg events sharing pe/level/clock.

        ``kind_codes`` are :data:`~repro.obs.events.KIND_CODES` values and
        may interleave kinds; row order is the emission order.  On the
        packed path this is one slab write per sink; otherwise each row
        materializes a TraceEvent in order.
        """
        if self.all_packed:
            for sink in self.sinks:
                sink.record_rows(kind_codes, cycles, clock, pe, level, arg0)
            return
        codes = list(kind_codes)
        cycle_list = list(cycles)
        arg_list = None if arg0 is None else list(arg0)
        for row, code in enumerate(codes):
            kind = EVENT_KINDS[code]
            if arg_list is None:
                args = {}
            else:
                key, decode = PACKED_SCHEMAS[kind][0]
                args = {key: decode(arg_list[row])}
            event = TraceEvent(
                kind,
                cycle=int(cycle_list[row]),
                clock=clock,
                pe=pe,
                level=level,
                args=args,
            )
            for sink in self.sinks:
                sink.record(event)

    def close(self) -> None:
        """Flush and close every sink (file-backed sinks write here)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _NullTracer(Tracer):
    """The shared disabled tracer; refuses sinks so it stays inert."""

    def add_sink(self, sink: Sink) -> None:
        raise RuntimeError(
            "NULL_TRACER is the shared disabled tracer; construct a "
            "Tracer([...]) instead of attaching sinks to it"
        )

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guarded
        pass


NULL_TRACER = _NullTracer()
