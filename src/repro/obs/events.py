"""Typed trace events: the observability vocabulary of the simulation.

Every event is a :class:`TraceEvent` — a frozen record of *what* happened
(``kind``), *when* (``cycle``, in the clock domain named by ``clock``), and
*where* (``pe``/``level`` for tree events, ``rank`` for memory events),
plus a small free-form ``args`` mapping for kind-specific detail.

The taxonomy follows the message lifecycle through one batch:

========================  =====================================================
kind                      meaning
========================  =====================================================
``batch_start``           host submits a batch (cycle 0 of the batch)
``mem_read_issue``        a DRAM read request enters the channel controller
``mem_read_complete``     its last data beat arrived (args carry start/bytes/
                          row_hit/bursts)
``leaf_inject``           a fetched vector's message enters a leaf PE FIFO
``fifo_enqueue``          FIFO occupancy after an inject (args carry depth)
``fifo_stall``            an inject pushed occupancy past the configured
                          buffer capacity (backpressure in real hardware)
``pe_reduce``             a compute unit folded a partner into an entry
``pe_forward``            a compute unit passed an entry along unmatched
``pe_merge``              the merge unit coalesced same-``indices`` outputs
``query_complete``        a finished answer was matched at the root
``batch_complete``        the batch's last query completed
``pipeline_batch``        multi-batch streaming: one batch's pipelined vs
                          serial completion (emitted by ``run_batches``)
``fault_injected``        a :class:`~repro.faults.plan.FaultPlan` fired at an
                          injection site (args carry ``fault``: the type)
``fault_detected``        the owning component noticed the fault (args carry
                          ``fatal: true`` when the retry budget is exhausted)
``retry_issued``          a recovery retry was issued (read re-issue with
                          backoff, source re-fetch, vector re-read)
``shard_redispatched``    a crashed/hung shard was re-dispatched onto a
                          healthy worker by ``ShardedRunner``
``query_degraded``        a query lost vectors and completed with
                          ``degraded``/``failed`` status (graceful mode)
``shard_msg_sent``        cross-shard reduction: one modeled inter-node
                          message (args carry step/src/dst/bytes/queries/
                          segments)
``shard_reduced``         cross-shard reduction: a node merged inbound
                          partials at the end of a schedule step (args carry
                          step/node/messages/queries)
``cache_hit``             the rank's hot-index tier served a vector read
                          without touching DRAM (args carry ``index``)
``cache_miss``            the tier was consulted and missed — the read went
                          to DRAM and the line was allocated (args carry
                          ``index``)
``placement_decided``     the placement optimizer assigned a rank its cache
                          budget / pinned residents / physical slot (args
                          carry the decision record)
``msg_dropped``           a cross-shard reduction message was lost on the
                          wire (args carry step/src/dst/bytes/attempt)
``msg_retransmitted``     a dropped message was re-sent — link-layer retry
                          or the final host-mediated escalation (args carry
                          step/src/dst/attempt/escalated)
``request_shed``          the admission controller refused a serving
                          request that could not meet its deadline (args
                          carry request/queue_depth/estimated_us)
``breaker_opened``        the per-rank circuit breaker opened and traffic
                          to the rank was routed to the hot-index tier
                          (args carry rank/ratio)
``hedge_issued``          a straggling shard's work was hedged onto a
                          healthy replica; first result wins (args carry
                          shard/batch/issued_at/won/saved/wasted)
========================  =====================================================

Memory events carry DRAM-clock cycles (``clock == CLOCK_DRAM``); everything
else is in PE cycles.  Events are plain picklable data so sharded workers
can return recorded streams across process boundaries, and two runs that
behave identically produce ``==``-equal event lists (the property the
scalar-vs-vector differential tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# --- event kinds -----------------------------------------------------------
BATCH_START = "batch_start"
MEM_READ_ISSUE = "mem_read_issue"
MEM_READ_COMPLETE = "mem_read_complete"
LEAF_INJECT = "leaf_inject"
FIFO_ENQUEUE = "fifo_enqueue"
FIFO_STALL = "fifo_stall"
PE_REDUCE = "pe_reduce"
PE_FORWARD = "pe_forward"
PE_MERGE = "pe_merge"
QUERY_COMPLETE = "query_complete"
BATCH_COMPLETE = "batch_complete"
PIPELINE_BATCH = "pipeline_batch"
FAULT_INJECTED = "fault_injected"
FAULT_DETECTED = "fault_detected"
RETRY_ISSUED = "retry_issued"
SHARD_REDISPATCHED = "shard_redispatched"
QUERY_DEGRADED = "query_degraded"
SHARD_MSG_SENT = "shard_msg_sent"
SHARD_REDUCED = "shard_reduced"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
PLACEMENT_DECIDED = "placement_decided"
MSG_DROPPED = "msg_dropped"
MSG_RETRANSMITTED = "msg_retransmitted"
REQUEST_SHED = "request_shed"
BREAKER_OPENED = "breaker_opened"
HEDGE_ISSUED = "hedge_issued"

EVENT_KINDS = (
    BATCH_START,
    MEM_READ_ISSUE,
    MEM_READ_COMPLETE,
    LEAF_INJECT,
    FIFO_ENQUEUE,
    FIFO_STALL,
    PE_REDUCE,
    PE_FORWARD,
    PE_MERGE,
    QUERY_COMPLETE,
    BATCH_COMPLETE,
    PIPELINE_BATCH,
    FAULT_INJECTED,
    FAULT_DETECTED,
    RETRY_ISSUED,
    SHARD_REDISPATCHED,
    QUERY_DEGRADED,
    SHARD_MSG_SENT,
    SHARD_REDUCED,
    # New kinds append at the END: KIND_CODES are enumeration-derived and
    # recorded columnar traces must keep decoding under newer vocabularies.
    CACHE_HIT,
    CACHE_MISS,
    PLACEMENT_DECIDED,
    MSG_DROPPED,
    MSG_RETRANSMITTED,
    REQUEST_SHED,
    BREAKER_OPENED,
    HEDGE_ISSUED,
)

# --- clock domains ---------------------------------------------------------
CLOCK_PE = "pe"
CLOCK_DRAM = "dram"

# --- packed emission -------------------------------------------------------
# Kinds whose ``args`` are a fixed tuple of small integers can travel the
# packed fast path (``Tracer.emit_packed`` → ``ColumnarSink``) without a
# TraceEvent or args dict ever being constructed at the emit site.  Each
# schema lists the arg keys in emission order plus the decoder restoring
# the original Python type when a columnar record is materialized back
# into a :class:`TraceEvent` (``row_hit`` must come back as a real bool so
# JSONL/Chrome exports are unchanged).
PACKED_SCHEMAS: Dict[str, tuple] = {
    PE_REDUCE: (("dur_cycles", int),),
    PE_FORWARD: (("dur_cycles", int),),
    PE_MERGE: (("members", int),),
    LEAF_INJECT: (("index", int),),
    FIFO_ENQUEUE: (("fifo", int), ("depth", int)),
    FIFO_STALL: (("fifo", int), ("depth", int)),
    QUERY_COMPLETE: (("query", int), ("terms", int)),
    MEM_READ_ISSUE: (("bank", int), ("bytes", int)),
    MEM_READ_COMPLETE: (
        ("bank", int),
        ("bytes", int),
        ("start_cycle", int),
        ("row_hit", bool),
        ("bursts", int),
    ),
    CACHE_HIT: (("index", int),),
    CACHE_MISS: (("index", int),),
}

#: Widest packed schema — sizes the arg columns of a ColumnarSink.
MAX_PACKED_ARGS = max(len(schema) for schema in PACKED_SCHEMAS.values())

#: Dense integer code per kind (the ColumnarSink's ``kind`` column).
KIND_CODES: Dict[str, int] = {kind: code for code, kind in enumerate(EVENT_KINDS)}


@dataclass(frozen=True)
class TraceEvent:
    """One observed occurrence inside a simulation run.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        cycle: timestamp in the domain named by ``clock``.  For operations
            with duration (memory reads, PE ops) this is the *completion*
            cycle; ``args`` carries the start where known.
        clock: ``"pe"`` or ``"dram"``.
        pe: tree PE id, for tree-side events.
        level: tree level of that PE (0 = leaves).
        rank: global memory rank, for memory-side and leaf-inject events.
        args: kind-specific detail (plain JSON-compatible values only).
    """

    kind: str
    cycle: int
    clock: str = CLOCK_PE
    pe: Optional[int] = None
    level: Optional[int] = None
    rank: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.clock not in (CLOCK_PE, CLOCK_DRAM):
            raise ValueError(f"unknown clock domain {self.clock!r}")
        if self.cycle < 0:
            raise ValueError("cycle must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        """Compact dict form (omits unset location fields) for JSONL."""
        record: Dict[str, Any] = {"kind": self.kind, "cycle": self.cycle}
        if self.clock != CLOCK_PE:
            record["clock"] = self.clock
        if self.pe is not None:
            record["pe"] = self.pe
        if self.level is not None:
            record["level"] = self.level
        if self.rank is not None:
            record["rank"] = self.rank
        if self.args:
            record["args"] = self.args
        return record

    @staticmethod
    def from_dict(record: Dict[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (used by JSONL replay)."""
        return TraceEvent(
            kind=record["kind"],
            cycle=record["cycle"],
            clock=record.get("clock", CLOCK_PE),
            pe=record.get("pe"),
            level=record.get("level"),
            rank=record.get("rank"),
            args=record.get("args", {}),
        )
