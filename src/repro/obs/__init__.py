"""Observability: cycle-level event tracing and metrics for the simulation.

The FAFNIR arguments are claims about *where* work and traffic land — the
channel node absorbing the cross-DIMM reductions, unique-index reuse
eliminating redundant DRAM reads — so end-of-run aggregates alone cannot
show whether a run behaved as the paper describes.  This package records
per-message lifecycles and per-cycle occupancy as typed events:

* :mod:`repro.obs.events` — the event taxonomy (leaf injects, PE
  reduce/forward/merge, FIFO enqueue/stall, memory read issue/complete,
  query completion) with cycle timestamps;
* :mod:`repro.obs.tracer` — the :class:`Tracer` dispatching events to
  sinks, and :data:`NULL_TRACER`, the zero-overhead disabled default;
* :mod:`repro.obs.sinks` — pluggable exports: an in-memory store for
  tests, a compact JSONL stream, and Chrome ``trace_event`` JSON loadable
  in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.metrics` — counters, gauges, and percentile histograms,
  plus :func:`metrics_from_events` deriving the standard metric set
  (query-latency percentiles, per-level occupancy, FIFO high-water marks,
  per-rank memory traffic) from a recorded event stream.

Capture a trace from the command line with ``python -m repro.cli trace``;
see the "Observability" section of ``docs/architecture.md`` for the
taxonomy and sink formats.
"""

from repro.obs.events import (
    BATCH_COMPLETE,
    BATCH_START,
    CLOCK_DRAM,
    CLOCK_PE,
    EVENT_KINDS,
    FAULT_DETECTED,
    FAULT_INJECTED,
    FIFO_ENQUEUE,
    FIFO_STALL,
    LEAF_INJECT,
    MEM_READ_COMPLETE,
    MEM_READ_ISSUE,
    PE_FORWARD,
    PE_MERGE,
    PE_REDUCE,
    PIPELINE_BATCH,
    QUERY_COMPLETE,
    QUERY_DEGRADED,
    RETRY_ISSUED,
    SHARD_MSG_SENT,
    SHARD_REDISPATCHED,
    SHARD_REDUCED,
    TraceEvent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_from_events,
    per_level_counts,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    ColumnarSink,
    InMemorySink,
    JsonlSink,
    Sink,
    chrome_trace_json,
)
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "BATCH_COMPLETE",
    "BATCH_START",
    "CLOCK_DRAM",
    "CLOCK_PE",
    "ChromeTraceSink",
    "ColumnarSink",
    "Counter",
    "EVENT_KINDS",
    "FAULT_DETECTED",
    "FAULT_INJECTED",
    "FIFO_ENQUEUE",
    "FIFO_STALL",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "LEAF_INJECT",
    "MEM_READ_COMPLETE",
    "MEM_READ_ISSUE",
    "MetricsRegistry",
    "NULL_TRACER",
    "PE_FORWARD",
    "PE_MERGE",
    "PE_REDUCE",
    "PIPELINE_BATCH",
    "QUERY_COMPLETE",
    "QUERY_DEGRADED",
    "RETRY_ISSUED",
    "SHARD_MSG_SENT",
    "SHARD_REDISPATCHED",
    "SHARD_REDUCED",
    "Sink",
    "TraceEvent",
    "Tracer",
    "chrome_trace_json",
    "metrics_from_events",
    "per_level_counts",
]
