"""Clock-domain bookkeeping.

The DRAM controller (≈1200 MHz for DDR4-2400) and the FAFNIR PEs (200 MHz on
the paper's FPGA) run in different clock domains.  All cross-domain latency
arithmetic in the reproduction goes through this module so the conversion is
done in exactly one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Clock:
    """A clock domain defined by its frequency in MHz."""

    freq_mhz: float

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def period_ns(self) -> float:
        return 1e3 / self.freq_mhz

    def cycles_to_ns(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles * self.period_ns

    def ns_to_cycles(self, ns: float) -> int:
        """Nanoseconds → whole cycles, rounding up (a partial cycle stalls)."""
        if ns < 0:
            raise ValueError("ns must be non-negative")
        return math.ceil(ns / self.period_ns - 1e-9)


DRAM_CLOCK = Clock(freq_mhz=1200.0)
PE_CLOCK = Clock(freq_mhz=200.0)
CPU_CLOCK = Clock(freq_mhz=3000.0)


def convert_cycles(cycles: float, source: Clock, target: Clock) -> int:
    """Re-express a cycle count from one clock domain in another."""
    return target.ns_to_cycles(source.cycles_to_ns(cycles))
