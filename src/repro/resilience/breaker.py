"""Per-rank circuit breaker driven by observed memory degradation.

The serving loop feeds the breaker one sample set per batched dispatch:
each rank's mean DRAM read latency over the batch (finish − start cycles
from the access trace).  Per-batch per-rank means are noisy — row-buffer
luck alone swings a healthy rank's mean by ±60% — so a rank is judged
against its **peers**, not its own history: the reference for every
sample is the fleet median across ranks in the same dispatch.  A healthy
rank rides the median wherever the workload moves it; a rank whose DRAM
is genuinely degraded stands multiples above it.

Per rank the breaker keeps the classic three-state machine:

* **closed** — healthy.  A sample at ``threshold_ratio`` × the fleet
  median or worse counts one degraded strike, and ``min_samples``
  consecutive strikes open the breaker.
* **open** — traffic to the rank is routed around it (the serving layer
  boosts the rank's hot-index tier and pins the rank's hottest rows, so
  reads are served from SRAM instead of the degraded DRAM).  After
  ``cooldown_us`` of modeled time the breaker half-opens.
* **half-open** — the next sample probes the rank: healthy closes the
  breaker, still-degraded re-opens it for another cooldown.

Peer comparison means the breaker detects *asymmetric* degradation — a
uniform fleet-wide slowdown raises the median and trips nothing, which
is correct: that is an overload problem for admission control, not a
routing problem.  Everything is a function of modeled quantities, so
breaker behaviour is deterministic per workload — and with no
degradation the breaker never opens, leaving the serving path
byte-identical to a build without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold, strike count, and recovery pacing.

    Attributes:
        threshold_ratio: multiple of the dispatch's fleet-median rank
            latency at which a sample counts as degraded.
        min_samples: consecutive degraded samples required to open.
        cooldown_us: modeled time an open breaker waits before half-open.
        cache_boost_kb: per-rank hot-tier capacity granted to an open
            rank (how much of the rank's hot set SRAM absorbs).
    """

    threshold_ratio: float = 2.0
    min_samples: int = 2
    cooldown_us: float = 500.0
    cache_boost_kb: int = 64

    def __post_init__(self) -> None:
        if self.threshold_ratio <= 1.0:
            raise ValueError("threshold_ratio must exceed 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")
        if self.cooldown_us < 0:
            raise ValueError("cooldown_us must be non-negative")
        if self.cache_boost_kb < 1:
            raise ValueError("cache_boost_kb must be positive")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class _RankState:
    state: str = STATE_CLOSED
    strikes: int = 0
    opened_at_us: float = 0.0
    open_count: int = 0
    last_ratio: float = 1.0


class CircuitBreaker:
    """The per-rank state machines plus run-level accounting."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self._ranks: Dict[int, _RankState] = {}
        self.total_opens = 0

    def _rank(self, rank: int) -> _RankState:
        return self._ranks.setdefault(rank, _RankState())

    def state(self, rank: int) -> str:
        return self._rank(rank).state

    def open_ranks(self) -> FrozenSet[int]:
        """Ranks currently routed around."""
        return frozenset(
            rank
            for rank, state in self._ranks.items()
            if state.state == STATE_OPEN
        )

    def poll(self, now_us: float) -> List[int]:
        """Advance cooldowns; returns ranks that just half-opened."""
        released: List[int] = []
        for rank, state in sorted(self._ranks.items()):
            if (
                state.state == STATE_OPEN
                and now_us - state.opened_at_us >= self.config.cooldown_us
            ):
                state.state = STATE_HALF_OPEN
                released.append(rank)
        return released

    def observe(
        self, samples: Mapping[int, float], now_us: float
    ) -> List[int]:
        """Fold one dispatch's per-rank mean latencies.

        Returns the ranks that freshly tripped open on this dispatch
        (re-opens of a half-open probe are the same incident and are not
        reported again).  Ranks served from the boosted tier contribute
        few or no DRAM completions, so they may be absent from
        ``samples``; their state machines simply hold until the probe.
        """
        positive = [value for value in samples.values() if value > 0]
        if len(positive) < 2:
            return []  # no peer group to compare against
        fleet = _median(positive)
        opened: List[int] = []
        for rank, mean_latency in sorted(samples.items()):
            if mean_latency <= 0:
                continue
            state = self._rank(rank)
            ratio = mean_latency / fleet
            state.last_ratio = ratio
            degraded = ratio >= self.config.threshold_ratio
            if state.state == STATE_HALF_OPEN:
                if degraded:
                    state.state = STATE_OPEN
                    state.opened_at_us = now_us
                else:
                    state.state = STATE_CLOSED
                    state.strikes = 0
                continue
            if state.state == STATE_OPEN:
                continue
            if degraded:
                state.strikes += 1
                if state.strikes >= self.config.min_samples:
                    state.state = STATE_OPEN
                    state.opened_at_us = now_us
                    state.open_count += 1
                    self.total_opens += 1
                    opened.append(rank)
            else:
                state.strikes = 0
        return opened

    def ratios(self) -> Dict[int, float]:
        """Last observed degradation ratio per rank (diagnostics)."""
        return {rank: state.last_ratio for rank, state in sorted(self._ranks.items())}
