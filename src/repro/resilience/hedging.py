"""Hedged re-dispatch of straggler shards, first result wins.

The tail-at-scale mitigation: when one shard's local completion stretches
far past its siblings' (a RecNMP-style rank slowdown surfacing as a
straggler), the reducer issues a *hedge* — the same shard-local work
re-dispatched onto a healthy replica — and takes whichever copy finishes
first, cancelling the loser.

The model is deliberately simple and fully deterministic:

* the **trigger** fires when a shard's (slowed) completion exceeds
  ``trigger_ratio`` × the median completion of the batch's contributing
  shards — the median is the robust "what healthy looks like" estimate a
  real dispatcher keeps;
* the hedge **completes** at ``issued_at + clean_cycles``: the replica
  starts from scratch at the trigger instant and runs at the shard's
  un-slowed speed;
* the **winner** is whichever finishes first; the loser is cancelled at
  that instant, and every cycle both copies ran is accounted —
  ``saved_cycles`` (tail cut off the straggler) against ``wasted_cycles``
  (redundant work the losing copy burned before cancellation).

Hedging is a pure timing overlay: the winning copy produces the same
bytes either way, so results stay bit-identical with hedging on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple


@dataclass(frozen=True)
class HedgePolicy:
    """When to hedge a straggling shard and how many hedges to spend.

    Attributes:
        trigger_ratio: hedge once a shard's completion exceeds this
            multiple of the batch's median shard completion.
        max_hedges_per_batch: replicas available per batch; the slowest
            stragglers are hedged first.
        min_trigger_cycles: never hedge before this many cycles have
            elapsed (guards against hedging trivially short batches).
    """

    trigger_ratio: float = 2.0
    max_hedges_per_batch: int = 1
    min_trigger_cycles: int = 0

    def __post_init__(self) -> None:
        if self.trigger_ratio <= 1.0:
            raise ValueError("trigger_ratio must exceed 1")
        if self.max_hedges_per_batch < 0:
            raise ValueError("max_hedges_per_batch must be non-negative")
        if self.min_trigger_cycles < 0:
            raise ValueError("min_trigger_cycles must be non-negative")


@dataclass(frozen=True)
class HedgeDecision:
    """One issued hedge: where it fired and how the race ended."""

    piece: int
    issued_at: int
    straggler_cycles: int
    hedged_cycles: int
    won: bool

    @property
    def effective_cycles(self) -> int:
        return min(self.straggler_cycles, self.hedged_cycles)

    @property
    def saved_cycles(self) -> int:
        return max(0, self.straggler_cycles - self.effective_cycles)

    @property
    def wasted_cycles(self) -> int:
        """Cycles the losing copy burned before first-result cancellation."""
        if self.won:
            # The original ran from 0 until the hedge finished.
            return self.effective_cycles
        # The hedge ran from issue until the original finished.
        return max(0, self.effective_cycles - self.issued_at)


@dataclass
class HedgeAccounting:
    """Run-level totals over every issued hedge."""

    issued: int = 0
    wins: int = 0
    saved_cycles: int = 0
    wasted_cycles: int = 0

    def absorb(self, decision: HedgeDecision) -> None:
        self.issued += 1
        if decision.won:
            self.wins += 1
        self.saved_cycles += decision.saved_cycles
        self.wasted_cycles += decision.wasted_cycles

    def merge(self, other: "HedgeAccounting") -> None:
        self.issued += other.issued
        self.wins += other.wins
        self.saved_cycles += other.saved_cycles
        self.wasted_cycles += other.wasted_cycles


def _median(values: List[int]) -> int:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) // 2


def plan_hedges(
    completions: Mapping[int, int],
    clean_completions: Mapping[int, int],
    policy: HedgePolicy,
) -> Tuple[Dict[int, int], List[HedgeDecision]]:
    """Race hedges against one batch's (possibly slowed) shard completions.

    Args:
        completions: piece id → local completion cycles as observed (with
            any straggler slowdown applied).
        clean_completions: piece id → the un-slowed completion a healthy
            replica would need, starting from scratch.
        policy: trigger/budget configuration.

    Returns:
        ``(effective, decisions)`` — the post-race completion per piece
        (unchanged for unhedged pieces) and the issued hedges, slowest
        straggler first.
    """
    effective = dict(completions)
    if not completions or policy.max_hedges_per_batch == 0:
        return effective, []
    reference = _median(list(completions.values()))
    issue_at = max(
        int(reference * policy.trigger_ratio), policy.min_trigger_cycles
    )
    stragglers = sorted(
        (piece for piece, done in completions.items() if done > issue_at),
        key=lambda piece: (-completions[piece], piece),
    )
    decisions: List[HedgeDecision] = []
    for piece in stragglers[: policy.max_hedges_per_batch]:
        hedged = issue_at + clean_completions[piece]
        decision = HedgeDecision(
            piece=piece,
            issued_at=issue_at,
            straggler_cycles=completions[piece],
            hedged_cycles=hedged,
            won=hedged < completions[piece],
        )
        effective[piece] = decision.effective_cycles
        decisions.append(decision)
    return effective, decisions
