"""End-to-end resilience: overload control, circuit breaking, hedging.

The three mechanisms this package contributes, and where they plug in:

* :mod:`repro.resilience.admission` — deadline-aware load shedding in
  front of the serving batcher (``ServingSimulator(overload=...)``);
* :mod:`repro.resilience.breaker` — a per-rank circuit breaker fed by
  observed DRAM latency; open ranks are served from a boosted hot-index
  tier (``ServingSimulator(breaker=...)``);
* :mod:`repro.resilience.hedging` — hedged re-dispatch of straggler
  shards with first-result-wins accounting
  (``ShardedRunner.run_reduced(hedge=...)``).

Link-level fault injection (message loss, bandwidth degradation, dead
shards) lives with the rest of the chaos script in
:class:`repro.faults.plan.FaultPlan`; this package holds the *reactions*.
"""

from repro.resilience.admission import ADMIT, SHED, AdmissionController, OverloadPolicy
from repro.resilience.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.resilience.hedging import (
    HedgeAccounting,
    HedgeDecision,
    HedgePolicy,
    plan_hedges,
)

__all__ = [
    "ADMIT",
    "SHED",
    "AdmissionController",
    "OverloadPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "BreakerConfig",
    "CircuitBreaker",
    "HedgeAccounting",
    "HedgeDecision",
    "HedgePolicy",
    "plan_hedges",
]
