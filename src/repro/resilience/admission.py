"""Deadline-aware admission control with load shedding.

Sits in front of the :class:`~repro.serving.batcher.ContinuousBatcher`:
every arriving request is either *admitted* into the queue or *shed* with
an immediate degraded answer.  The test is a completion-time forecast —
queue depth converted to whole batches ahead, each charged the
controller's running estimate of batch service time:

    forecast = max(now, accelerator_free_at)
             + batches_ahead · estimated_batch_us

A request is shed when the forecast overruns its deadline by more than
the safety margin: it could only have missed its SLO while making every
request behind it later.  Shedding early is the whole point of overload
control — under a burst past capacity, queueing delay otherwise grows
without bound and *every* request misses, whereas shedding the excess
keeps the admitted stream on-SLO.

The service estimate is an EWMA over observed batch service times,
seeded from the batcher's dispatch margin until the first observation
lands.  All state is derived from modeled quantities, so a given
workload sheds the same requests on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # runtime import would cycle: serving imports resilience
    from repro.serving.loadgen import Request

#: Admission verdicts.
ADMIT = "admit"
SHED = "shed"


@dataclass(frozen=True)
class OverloadPolicy:
    """Shedding configuration for the admission controller.

    Attributes:
        safety_margin_us: forecast slack; a request is shed only when the
            forecast exceeds ``deadline − margin``.
        max_queue_depth: hard backlog cap (``None`` = unbounded); arrivals
            beyond it are shed regardless of their deadline.
        ewma_alpha: weight of the newest batch-service observation.
        initial_service_us: estimate used before the first observation
            (``None`` → the batcher's dispatch margin).
    """

    safety_margin_us: float = 0.0
    max_queue_depth: Optional[int] = None
    ewma_alpha: float = 0.3
    initial_service_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.safety_margin_us < 0:
            raise ValueError("safety_margin_us must be non-negative")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive (or None)")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be within (0, 1]")
        if self.initial_service_us is not None and self.initial_service_us < 0:
            raise ValueError("initial_service_us must be non-negative")


class AdmissionController:
    """Stateful admit/shed decisions over one serving run."""

    def __init__(
        self, policy: OverloadPolicy, batch_size: int, default_service_us: float
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.policy = policy
        self.batch_size = batch_size
        self._estimate_us = (
            policy.initial_service_us
            if policy.initial_service_us is not None
            else default_service_us
        )
        self.shed_count = 0
        self.admitted_count = 0

    @property
    def estimated_batch_us(self) -> float:
        return self._estimate_us

    def observe(self, service_us: float) -> None:
        """Fold one observed batch service time into the EWMA."""
        alpha = self.policy.ewma_alpha
        self._estimate_us = alpha * service_us + (1 - alpha) * self._estimate_us

    def forecast_complete_us(
        self, now_us: float, queue_depth: int, free_at_us: float
    ) -> float:
        """Forecast completion for a request joining behind ``queue_depth``."""
        batches_ahead = (queue_depth // self.batch_size) + 1
        return max(now_us, free_at_us) + batches_ahead * self._estimate_us

    def decide(
        self,
        request: Request,
        now_us: float,
        queue_depth: int,
        free_at_us: float,
    ) -> str:
        """:data:`ADMIT` or :data:`SHED` for one arriving request."""
        cap = self.policy.max_queue_depth
        if cap is not None and queue_depth >= cap:
            self.shed_count += 1
            return SHED
        forecast = self.forecast_complete_us(now_us, queue_depth, free_at_us)
        if forecast > request.deadline_us - self.policy.safety_margin_us:
            self.shed_count += 1
            return SHED
        self.admitted_count += 1
        return ADMIT
