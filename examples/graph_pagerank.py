"""Graph analytics on FAFNIR: PageRank and BFS over SpMV (paper §IV-D).

The same FAFNIR hardware that accelerates embedding lookup runs sparse
matrix-vector multiplication: here a power-law (R-MAT) graph is ranked with
power-iteration PageRank and traversed with BFS, comparing FAFNIR's modelled
hardware time against the Two-Step NDP baseline.

Run:  python examples/graph_pagerank.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced graph, e.g. under CI.)
"""

import os

import numpy as np

from repro.analysis import Table
from repro.baselines.twostep import TwoStepSpmvEngine
from repro.sparse import rmat
from repro.spmv import FafnirSpmvEngine, bfs, pagerank


SMOKE = bool(os.environ.get("FAFNIR_SMOKE"))


def main() -> None:
    graph = rmat(scale=7 if SMOKE else 12, edge_factor=8, seed=5)
    print(
        f"R-MAT graph: {graph.shape[0]} vertices, {graph.nnz} edges, "
        f"density {100 * graph.density:.2f}%\n"
    )

    engines = {"fafnir": FafnirSpmvEngine(), "two-step": TwoStepSpmvEngine()}

    table = Table(["engine", "pagerank_iters", "pagerank_hw_ms", "bfs_levels", "bfs_hw_ms"])
    ranks = {}
    for name, engine in engines.items():
        pr = pagerank(graph, engine, tolerance=1e-9)
        traversal = bfs(graph, engine, source=0)
        ranks[name] = pr.values
        table.add_row(
            [
                name,
                pr.iterations,
                f"{pr.total_ns / 1e6:.3f}",
                int(traversal.values.max()),
                f"{traversal.total_ns / 1e6:.3f}",
            ]
        )
    print(table.render())

    assert np.allclose(ranks["fafnir"], ranks["two-step"])
    top = np.argsort(ranks["fafnir"])[::-1][:5]
    print("\ntop-5 vertices by PageRank:")
    for vertex in top:
        print(f"  vertex {vertex:5d}: rank {ranks['fafnir'][vertex]:.5f}")


if __name__ == "__main__":
    main()
