"""Recommendation-system inference: FAFNIR vs every baseline, end to end.

Models one DLRM-style inference — a software batch of 256 embedding-lookup
queries followed by fixed fully-connected layers (0.5 ms, paper Fig. 12) —
on each engine, and prints the per-engine latency breakdown plus end-to-end
speedups, mirroring the paper's headline evaluation.

Run:  python examples/recommendation_inference.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced batch, e.g. under CI.)
"""

import os

from repro.analysis import Table
from repro.baselines import (
    CpuGatherEngine,
    FafnirGatherEngine,
    RecNmpGatherEngine,
    TensorDimmGatherEngine,
)
from repro.workloads import EmbeddingTableSet, InferenceModel, QueryGenerator


SMOKE = bool(os.environ.get("FAFNIR_SMOKE"))


def main() -> None:
    tables = EmbeddingTableSet.random(seed=3)
    generator = QueryGenerator.paper_calibrated(tables, seed=4)
    batch = generator.batch(32 if SMOKE else 256)
    inference = InferenceModel(fc_ms=0.5, other_ms=0.1)

    engines = {
        "cpu-baseline": CpuGatherEngine(),
        "tensordimm": TensorDimmGatherEngine(),
        "recnmp": RecNmpGatherEngine(with_cache=True),
        "fafnir": FafnirGatherEngine(),
    }

    print(f"software batch: {len(batch)} queries × {len(batch[0])} lookups\n")
    table = Table(
        ["engine", "embed_ms", "fc_ms", "total_ms", "inference_speedup", "bytes_to_core"]
    )
    baseline_total = None
    for name, engine in engines.items():
        result = engine.lookup(batch, tables.vector)
        assert engine.oracle_check(batch[:8], tables.vector)
        breakdown = inference.breakdown(result.total_ns / 1e6)
        if baseline_total is None:
            baseline_total = breakdown.total_ms
        table.add_row(
            [
                name,
                f"{breakdown.embedding_ms:.3f}",
                f"{breakdown.fc_ms:.1f}",
                f"{breakdown.total_ms:.3f}",
                f"{baseline_total / breakdown.total_ms:.2f}×",
                result.bytes_to_core,
            ]
        )
    print(table.render())
    print(
        "\nFAFNIR performs every reduction at NDP and ships only output "
        "vectors;\nthe remaining end-to-end gap is Amdahl's law on the fixed "
        "FC layers."
    )


if __name__ == "__main__":
    main()
