"""Design-space exploration: scale the FAFNIR tree and read off the costs.

Sweeps the memory-system size and batch size, reporting for each point the
lookup latency together with the hardware-model outputs (PE count, buffer
capacity, ASIC area/power, connection counts) — the kind of sizing study a
system architect would run before committing to a configuration.

Run:  python examples/design_space.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced sweep, e.g. under CI.)
"""

import os

from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine
from repro.hw import (
    ConnectionComparison,
    PE_AREA_MM2,
    PE_MW,
    size_buffers,
)
from repro.memory import MemoryConfig
from repro.workloads import EmbeddingTableSet, QueryGenerator


SMOKE = bool(os.environ.get("FAFNIR_SMOKE"))


def main() -> None:
    tables = EmbeddingTableSet.random(seed=2)
    print("== scaling the memory system (batch 16, q 16) ==")
    table = Table(
        ["ranks", "PEs", "latency_us", "area_mm2", "power_mW", "tree_links", "all_to_all"]
    )
    for ranks in (4, 8) if SMOKE else (4, 8, 16, 32):
        config = FafnirConfig(batch_size=16).with_ranks(ranks)
        engine = FafnirEngine(
            config, memory_config=MemoryConfig().scaled_to_ranks(ranks)
        )
        batch = QueryGenerator.paper_calibrated(tables, seed=1).batch(16)
        result = engine.run_batch(batch, tables.vector)
        connections = ConnectionComparison(memory_devices=ranks, compute_devices=4)
        table.add_row(
            [
                ranks,
                config.num_pes,
                f"{result.stats.latency_ns(config) / 1000:.2f}",
                f"{config.num_pes * PE_AREA_MM2:.2f}",
                f"{config.num_pes * PE_MW:.1f}",
                connections.fafnir,
                connections.all_to_all,
            ]
        )
    print(table.render())

    print("\n== scaling the batch size (32 ranks) ==")
    table = Table(["batch", "latency_us", "us_per_query", "PE_buffer_KB", "node_KB"])
    for batch_size in (4, 8) if SMOKE else (4, 8, 16, 32):
        config = FafnirConfig(batch_size=batch_size)
        engine = FafnirEngine(config)
        batch = QueryGenerator.paper_calibrated(tables, seed=1).batch(batch_size)
        result = engine.run_batch(batch, tables.vector)
        sizing = size_buffers(config)
        latency_us = result.stats.latency_ns(config) / 1000
        table.add_row(
            [
                batch_size,
                f"{latency_us:.2f}",
                f"{latency_us / batch_size:.3f}",
                f"{sizing.pe_buffer_kb:.1f}",
                f"{sizing.dimm_rank_node_kb:.1f}",
            ]
        )
    print(table.render())
    print(
        "\nlatency per query falls as the batch grows — the scalability "
        "property Fig. 13 is built on — while buffers grow linearly (Table I)."
    )


if __name__ == "__main__":
    main()
