"""Scientific computing on FAFNIR: an iterative sparse solver (paper §VIII).

Solves a 2-D Poisson problem (5-point-stencil Laplacian, regularised to
diagonal dominance) with Jacobi iteration, running every inner SpMV on the
FAFNIR tree — the "matrix inversion / differential-equation solver" family
of sparse gathering the paper targets beyond embedding lookup.

Run:  python examples/sparse_solver.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced system, e.g. under CI.)
"""

import os

import numpy as np

from repro.baselines.twostep import TwoStepSpmvEngine
from repro.sparse import CooMatrix, LilMatrix, laplacian_2d
from repro.spmv import FafnirSpmvEngine, jacobi_solve


def regularised_poisson(side: int) -> LilMatrix:
    """The 2-D stencil with a boosted diagonal so Jacobi converges fast."""
    stencil = laplacian_2d(side).to_coo()
    rows = list(stencil.rows) + list(range(side * side))
    cols = list(stencil.cols) + list(range(side * side))
    values = list(stencil.values) + [1.0] * (side * side)
    return LilMatrix.from_coo(
        CooMatrix((side * side, side * side), np.array(rows), np.array(cols),
                  np.array(values))
    )


def main() -> None:
    side = 12 if os.environ.get("FAFNIR_SMOKE") else 40
    system = regularised_poisson(side)
    rng = np.random.default_rng(11)
    rhs = rng.normal(size=system.shape[0])
    print(
        f"system: {system.shape[0]} unknowns, {system.nnz} non-zeros "
        f"({system.nnz / system.shape[0]:.1f} per row)\n"
    )

    for engine, name in (
        (FafnirSpmvEngine(), "fafnir"),
        (TwoStepSpmvEngine(), "two-step"),
    ):
        solution = jacobi_solve(system, rhs, engine, tolerance=1e-10)
        residual = np.linalg.norm(system.matvec(solution.values) - rhs)
        print(
            f"{name:9s} converged={solution.converged} "
            f"iterations={solution.iterations:3d} "
            f"residual={residual:.2e} "
            f"modelled hw time={solution.total_ns / 1e6:.3f} ms"
        )

    # Cross-check against dense LAPACK.
    reference = np.linalg.solve(system.to_dense(), rhs)
    fafnir_solution = jacobi_solve(
        system, rhs, FafnirSpmvEngine(), tolerance=1e-12
    ).values
    print(
        f"\nmax |x − LAPACK|: {np.abs(fafnir_solution - reference).max():.2e} ✓"
    )


if __name__ == "__main__":
    main()
