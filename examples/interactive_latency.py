"""Interactive vs batched lookup (paper §IV-C) and HBM integration (§VIII).

An online recommendation service faces a choice: serve each request the
moment it arrives (interactive mode — compare-free PEs, lowest single-query
latency) or accumulate a batch (batch mode — unique-index dedup and full
tree parallelism, best throughput).  This example quantifies the trade, then
re-runs the lookup on an HBM2 stack with leaf PEs on the 32 pseudo-channels.

Run:  python examples/interactive_latency.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced batch, e.g. under CI.)
"""

import os

from repro.analysis import Table
from repro.core import FafnirConfig, FafnirEngine, InteractiveEngine
from repro.memory import hbm2_stack
from repro.workloads import EmbeddingTableSet, QueryGenerator


SMOKE = bool(os.environ.get("FAFNIR_SMOKE"))


def main() -> None:
    batch_size = 8 if SMOKE else 32
    tables = EmbeddingTableSet.random(seed=9)
    generator = QueryGenerator.paper_calibrated(tables, seed=10)
    queries = generator.batch(batch_size)

    # --- single-query latency: interactive vs batch path ---
    interactive = InteractiveEngine()
    single = FafnirEngine(FafnirConfig(batch_size=1))
    one = queries[0]
    i_result = interactive.lookup_one(one, tables.vector)
    b_result = single.run_batch([one], tables.vector)
    print("single query (16 lookups):")
    print(f"  interactive mode: {i_result.latency_pe_cycles * 5} ns "
          f"({i_result.latency_pe_cycles} PE cycles, compare-free PEs)")
    print(f"  batch path:       {b_result.stats.latency_pe_cycles * 5} ns "
          f"({b_result.stats.latency_pe_cycles} PE cycles, full headers)\n")

    # --- throughput: serving the batch one-by-one vs as one batch ---
    serial_cycles = 0
    for query in queries:
        serial_cycles += interactive.lookup_one(query, tables.vector).latency_pe_cycles
    batch_engine = FafnirEngine(FafnirConfig(batch_size=batch_size))
    batched = batch_engine.run_batch(queries, tables.vector)

    serial_reads = batch_size * 16
    table = Table(["mode", "total_us", "per_query_us", "dram_reads"])
    table.add_row(
        [
            f"interactive ×{batch_size}",
            f"{serial_cycles * 5 / 1000:.2f}",
            f"{serial_cycles * 5 / 1000 / batch_size:.3f}",
            serial_reads,
        ]
    )
    table.add_row(
        [
            f"one batch of {batch_size}",
            f"{batched.stats.latency_pe_cycles * 5 / 1000:.2f}",
            f"{batched.stats.latency_pe_cycles * 5 / 1000 / batch_size:.3f}",
            batched.stats.memory.reads,
        ]
    )
    print(table.render())
    print(
        f"\nbatching wins throughput "
        f"{serial_cycles / batched.stats.latency_pe_cycles:.1f}× and reads "
        f"{serial_reads - batched.stats.memory.reads} fewer vectors (dedup); "
        "interactive wins first-result latency.\n"
    )

    # --- HBM integration (paper §VIII) ---
    ddr4 = FafnirEngine(FafnirConfig(batch_size=batch_size))
    hbm = FafnirEngine(
        FafnirConfig(batch_size=batch_size), memory_config=hbm2_stack()
    )
    ddr4_result = ddr4.run_batch(queries, tables.vector)
    hbm_result = hbm.run_batch(queries, tables.vector)
    print("same batch, leaf PEs on HBM2 pseudo-channels instead of DDR4 ranks:")
    print(f"  DDR4 (4 ch × 8 ranks): {ddr4_result.stats.latency_pe_cycles * 5 / 1000:.2f} µs")
    print(f"  HBM2 (32 pseudo-ch):   {hbm_result.stats.latency_pe_cycles * 5 / 1000:.2f} µs "
          f"({ddr4_result.stats.latency_pe_cycles / hbm_result.stats.latency_pe_cycles:.1f}× faster)")


if __name__ == "__main__":
    main()
