"""Quickstart: batched embedding lookup on FAFNIR.

Builds a 32-table embedding set, generates a Zipfian batch of queries, runs
it through the FAFNIR tree, verifies the outputs against NumPy, and prints
the measurements the accelerator reports.

Run:  python examples/quickstart.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced batch, e.g. under CI.)
"""

import os

import numpy as np

from repro import FafnirAccelerator
from repro.workloads import EmbeddingTableSet, QueryGenerator


def main() -> None:
    # 32 embedding tables of 100 K rows × 512 B vectors, mapped one table
    # per rank exactly as the paper's Fig. 4b.
    tables = EmbeddingTableSet.random(
        num_tables=32, rows_per_table=100_000, vector_bytes=512, seed=7
    )
    print(f"table set: {tables.storage_bytes() / 2**30:.1f} GiB across 32 ranks")

    # A batch of 32 queries, each gathering 16 vectors, with realistic
    # index sharing (popular rows appear in many queries).
    generator = QueryGenerator.paper_calibrated(tables, seed=1)
    batch = generator.batch(8 if os.environ.get("FAFNIR_SMOKE") else 32)

    fafnir = FafnirAccelerator(operator="sum")
    result = fafnir.lookup(tables.vector, batch)

    # Outputs: one reduced 128-element vector per query.
    print(f"queries: {len(result.vectors)}, output dim: {result.vectors[0].shape}")

    # Verify against a direct NumPy reduction.
    for query, produced in zip(batch, result.vectors):
        expected = np.sum([tables.vector(i) for i in set(query)], axis=0)
        assert np.allclose(produced, expected)
    print("outputs match the NumPy oracle ✓")

    stats = result.stats
    print(f"\nlookup latency: {stats.latency_ns(fafnir.config) / 1000:.2f} µs "
          f"({stats.latency_pe_cycles} PE cycles @ 200 MHz)")
    print(f"unique indices read: {stats.unique_reads} of {stats.total_lookups} "
          f"lookups ({100 * stats.unique_fraction:.0f}% unique, "
          f"{stats.accesses_saved} DRAM reads eliminated)")
    print(f"data shipped to cores: {stats.output_bytes} B "
          f"(the no-NDP baseline would ship {stats.naive_movement_bytes} B — "
          f"{stats.movement_reduction_factor:.1f}× more)")
    print(f"DRAM row-hit rate: {100 * stats.memory.row_hit_rate:.0f}%, "
          f"ranks touched: {stats.memory.ranks_touched}")

    work = stats.total_work
    print(f"tree work: {work.reduces} reduces, {work.forwards} forwards, "
          f"{work.merges} merges across 31 PEs")


if __name__ == "__main__":
    main()
