"""One hardware, many graph kernels: semiring SpMV on FAFNIR.

The FAFNIR tree only requires its reduction to be associative and
commutative, so swapping the (⊕, ⊗) pair retargets the same silicon:

* (+, ×)    — PageRank power iteration;
* (min, +)  — single-source shortest paths (Bellman-Ford relaxations);
* (or, and) — BFS reachability frontiers.

This example runs all three on one road-network-style graph and reports the
modelled hardware time per kernel.

Run:  python examples/semiring_graphs.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced mesh, e.g. under CI.)
"""

import os

import numpy as np

from repro.analysis import Table
from repro.sparse import LilMatrix, road_mesh
from repro.spmv import FafnirSpmvEngine, bfs, pagerank, sssp


SMOKE = bool(os.environ.get("FAFNIR_SMOKE"))


def main() -> None:
    side = 12 if SMOKE else 40
    base = road_mesh(side, seed=13)  # road-like mesh of side² vertices
    rng = np.random.default_rng(14)
    # Positive edge weights (travel times) on the same topology.
    weighted = LilMatrix(
        base.shape,
        base.row_indices,
        [rng.uniform(1.0, 9.0, size=len(v)) for v in base.row_values],
    )
    engine = FafnirSpmvEngine()
    source = 0

    print(f"graph: {base.shape[0]} vertices, {base.nnz} edges\n")

    ranks = pagerank(base, engine, tolerance=1e-9)
    distances = sssp(weighted, engine, source=source)
    levels = bfs(base, engine, source=source)

    table = Table(["kernel", "semiring", "iterations", "hw_time_ms"])
    table.add_row(["pagerank", "(+, ×)", ranks.iterations, f"{ranks.total_ns / 1e6:.3f}"])
    table.add_row(["sssp", "(min, +)", distances.iterations, f"{distances.total_ns / 1e6:.3f}"])
    table.add_row(["bfs", "(or, and)", levels.iterations, f"{levels.total_ns / 1e6:.3f}"])
    print(table.render())

    reachable = int((levels.values >= 0).sum())
    finite = int(np.isfinite(distances.values).sum())
    print(f"\nreachable from vertex {source}: {reachable}/{base.shape[0]} "
          f"(BFS) = {finite}/{base.shape[0]} (SSSP finite distances)")
    assert reachable == finite

    far = int(np.argmax(np.where(np.isfinite(distances.values), distances.values, -1)))
    print(f"farthest vertex by travel time: {far} "
          f"(distance {distances.values[far]:.1f}, BFS level {int(levels.values[far])})")
    print(f"top PageRank vertex: {int(np.argmax(ranks.values))}")


if __name__ == "__main__":
    main()
