"""Trace-driven evaluation: record a workload, replay it on every engine.

Production embedding workloads are evaluated from recorded query traces.
This example synthesises a trace, writes it to disk in the library's text
format, replays it through FAFNIR and the baselines, and shows how the
host-side batch scheduler changes FAFNIR's redundant-access savings.

Run:  python examples/trace_replay.py
(Set FAFNIR_SMOKE=1 for a seconds-long reduced trace, e.g. under CI.)
"""

import os
import pathlib
import tempfile

from repro.analysis import Table
from repro.baselines import FafnirGatherEngine, RecNmpGatherEngine
from repro.workloads import (
    EmbeddingTableSet,
    FifoScheduler,
    QueryTrace,
    SharingAwareScheduler,
)


SMOKE = bool(os.environ.get("FAFNIR_SMOKE"))


def main() -> None:
    tables = EmbeddingTableSet.random(seed=21)

    # --- record ---
    trace = QueryTrace.synthesize(
        tables, num_queries=32 if SMOKE else 128, seed=22
    )
    trace_path = pathlib.Path(tempfile.gettempdir()) / "fafnir_demo_trace.txt"
    trace.save(trace_path)
    print(
        f"recorded {len(trace)} queries ({trace.total_lookups} lookups, "
        f"{trace.distinct_indices} distinct indices) → {trace_path}"
    )

    # --- replay on two engines ---
    replayed = QueryTrace.load(trace_path)
    table = Table(["engine", "total_us", "dram_reads", "bytes_to_core"])
    for engine, name in (
        (RecNmpGatherEngine(with_cache=True), "recnmp+cache"),
        (FafnirGatherEngine(), "fafnir"),
    ):
        result = engine.lookup(replayed.queries, tables.vector)
        table.add_row(
            [
                name,
                f"{result.total_ns / 1000:.1f}",
                result.dram_reads,
                result.bytes_to_core,
            ]
        )
    print("\nreplay:")
    print(table.render())

    # --- batch scheduling ---
    fifo = FifoScheduler(batch_size=32).report(replayed.queries)
    aware = SharingAwareScheduler(batch_size=32, window=128).report(replayed.queries)
    print("\nhost-side batching policy (hardware batch = 32):")
    print(
        f"  arrival order:  {fifo.total_reads} reads "
        f"({100 * fifo.savings_fraction:.1f}% saved)"
    )
    print(
        f"  sharing-aware:  {aware.total_reads} reads "
        f"({100 * aware.savings_fraction:.1f}% saved)"
    )
    trace_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
